"""Tests for the command-line interface (driven in-process)."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_run_defaults(self):
        args = make_parser().parse_args(["run", "gap.bfs"])
        assert args.technique == "conv"
        assert args.scale == "small"

    def test_bad_technique_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["run", "gap.bfs",
                                      "--technique", "magic"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gap.bfs" in out and "spec.fp.saxpy_like" in out

    def test_run(self, capsys):
        rc = main(["run", "gap.bfs", "--scale", "tiny",
                   "--technique", "conv", "--max-instructions", "5000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "convergence found" in out

    def test_run_nowp_omits_conv_metrics(self, capsys):
        rc = main(["run", "gap.pr", "--scale", "tiny",
                   "--technique", "nowp", "--max-instructions", "3000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "convergence found" not in out

    def test_compare(self, capsys):
        rc = main(["compare", "gap.bfs", "--scale", "tiny",
                   "--max-instructions", "8000"])
        assert rc == 0
        out = capsys.readouterr().out
        for technique in ("nowp", "instrec", "conv", "wpemul"):
            assert technique in out
        assert "error" in out

    def test_unknown_workload(self, capsys):
        assert main(["run", "gap.nothere",
                     "--max-instructions", "10"]) == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_compare_jobs_flag(self, tmp_path, capsys):
        rc = main(["compare", "gap.bfs", "--scale", "tiny",
                   "--max-instructions", "6000",
                   "--jobs", "2", "--cache-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        for technique in ("nowp", "instrec", "conv", "wpemul"):
            assert technique in out
        # Short names resolve through the engine path too.
        assert main(["compare", "bfs", "--scale", "tiny",
                     "--max-instructions", "6000",
                     "--jobs", "1", "--cache-dir", str(tmp_path)]) == 0
        assert "gap.bfs" in capsys.readouterr().out


class TestSweep:
    ARGS = ["sweep", "--workloads", "bfs,pr",
            "--techniques", "nowp,conv", "--scale", "tiny",
            "--max-instructions", "5000"]

    def test_cold_then_warm(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path)]
        assert main(self.ARGS + cache + ["--jobs", "2"]) == 0
        cold = capsys.readouterr().out
        assert "0 cache hits" in cold and "4 simulated" in cold
        assert (tmp_path / "journal.jsonl").exists()

        assert main(self.ARGS + cache + ["--jobs", "2"]) == 0
        warm = capsys.readouterr().out
        assert "4 cache hits (100%)" in warm and "0 simulated" in warm

        # Parallel and serial runs render identical result tables.
        assert main(self.ARGS + cache + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        table = lambda text: text.split("\n\n")[0]  # noqa: E731
        assert table(serial) == table(warm)

    def test_failed_job_sets_exit_code(self, tmp_path, capsys):
        rc = main(["sweep", "--workloads", "bfs", "--techniques", "conv",
                   "--scale", "tiny", "--max-instructions", "1000",
                   "--set", "rob_size=-5", "--jobs", "1", "--retries", "0",
                   "--cache-dir", str(tmp_path)])
        assert rc == 1
        assert "FAILED" in capsys.readouterr().out

    def test_config_axis_expands_grid(self, tmp_path, capsys):
        rc = main(["sweep", "--workloads", "bfs", "--techniques", "nowp",
                   "--scale", "tiny", "--max-instructions", "2000",
                   "--set", "rob_size=32", "--set", "rob_size=64",
                   "--jobs", "1", "--cache-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rob_size=32" in out and "rob_size=64" in out
        assert "2 jobs" in out

    def test_no_cache_disables_store(self, tmp_path, capsys):
        rc = main(["sweep", "--workloads", "bfs", "--techniques", "nowp",
                   "--scale", "tiny", "--max-instructions", "2000",
                   "--jobs", "1", "--no-cache",
                   "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert not (tmp_path / "journal.jsonl").exists()
        assert "cache:" not in capsys.readouterr().out.splitlines()[-1]


class TestSampleCommand:
    ARGS = ["sample", "--workloads", "bfs", "--techniques", "nowp,conv",
            "--scale", "tiny", "--detail-length", "2000",
            "--ff-length", "6000"]

    def test_cold_then_warm_share_digest(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path)]
        assert main(self.ARGS + cache + ["--jobs", "2"]) == 0
        cold = capsys.readouterr().out
        assert "gap.bfs" in cold and "intervals" in cold
        digest = [line for line in cold.splitlines()
                  if "combined digest" in line]
        assert digest

        assert main(self.ARGS + cache + ["--jobs", "1"]) == 0
        warm = capsys.readouterr().out
        assert digest[0].split("combined digest")[1] in warm

    def test_validate_reports_error(self, tmp_path, capsys):
        rc = main(self.ARGS + ["--cache-dir", str(tmp_path),
                               "--jobs", "1", "--validate", "conv"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "err vs full" in out
        assert "mean |IPC error|" in out

    def test_parser_defaults(self):
        args = make_parser().parse_args(["sample"])
        assert args.workloads == "gap"
        assert args.detail_length == 10_000
        assert args.ff_length == 40_000
        assert args.validate is None


class TestCompile:
    def test_compile_to_stdout(self, tmp_path, capsys):
        src = tmp_path / "k.c"
        src.write_text("void main() { print_int(7); }")
        assert main(["compile", str(src)]) == 0
        out = capsys.readouterr().out
        assert "_start:" in out

    def test_compile_to_file(self, tmp_path):
        src = tmp_path / "k.c"
        src.write_text("void main() { print_int(7); }")
        out = tmp_path / "k.s"
        assert main(["compile", str(src), "-o", str(out)]) == 0
        assert "_start:" in out.read_text()
        # The emitted assembly must itself assemble and run.
        from repro.functional.emulator import Emulator
        from repro.isa.assembler import assemble
        emu = Emulator(assemble(out.read_text()))
        emu.run()
        assert emu.output == [7]

    def test_compile_error_exit_code(self, tmp_path, capsys):
        src = tmp_path / "bad.c"
        src.write_text("void main() { x = ; }")
        assert main(["compile", str(src)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent/file.c"]) == 1


class TestFuzzCommand:
    def test_fuzz_clean_run(self, tmp_path, capsys):
        rc = main(["fuzz", "--seed", "5", "--budget", "3",
                   "--max-instructions", "2000", "--quiet",
                   "--corpus", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "findings digest:" in out

    def test_fuzz_replay_missing_file(self, capsys):
        assert main(["fuzz", "--replay", "/nonexistent/case.json"]) == 1
        assert "no such corpus file" in capsys.readouterr().err

    def test_fuzz_replay_saved_case(self, tmp_path, capsys):
        from repro.fuzz import make_case, save_case
        # A clean case replays with exit 0 ("no longer reproduces").
        case = make_case(5, 0, max_instructions=2000)
        path = save_case(str(tmp_path), case,
                         [{"oracle": "arch", "technique": "conv",
                           "detail": "stale"}])
        assert main(["fuzz", "--replay", path]) == 0
        assert "no longer reproduces" in capsys.readouterr().out

    def test_fuzz_parser_defaults(self):
        args = make_parser().parse_args(["fuzz"])
        assert args.seed == 0
        assert args.budget == 100
        assert args.frontend == "both"
        assert args.corpus == ".fuzz-corpus"
