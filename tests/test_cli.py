"""Tests for the command-line interface (driven in-process)."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_run_defaults(self):
        args = make_parser().parse_args(["run", "gap.bfs"])
        assert args.technique == "conv"
        assert args.scale == "small"

    def test_bad_technique_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["run", "gap.bfs",
                                      "--technique", "magic"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gap.bfs" in out and "spec.fp.saxpy_like" in out

    def test_run(self, capsys):
        rc = main(["run", "gap.bfs", "--scale", "tiny",
                   "--technique", "conv", "--max-instructions", "5000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "convergence found" in out

    def test_run_nowp_omits_conv_metrics(self, capsys):
        rc = main(["run", "gap.pr", "--scale", "tiny",
                   "--technique", "nowp", "--max-instructions", "3000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "convergence found" not in out

    def test_compare(self, capsys):
        rc = main(["compare", "gap.bfs", "--scale", "tiny",
                   "--max-instructions", "8000"])
        assert rc == 0
        out = capsys.readouterr().out
        for technique in ("nowp", "instrec", "conv", "wpemul"):
            assert technique in out
        assert "error" in out

    def test_unknown_workload(self, capsys):
        assert main(["run", "gap.nothere",
                     "--max-instructions", "10"]) == 1
        assert "unknown workload" in capsys.readouterr().err


class TestCompile:
    def test_compile_to_stdout(self, tmp_path, capsys):
        src = tmp_path / "k.c"
        src.write_text("void main() { print_int(7); }")
        assert main(["compile", str(src)]) == 0
        out = capsys.readouterr().out
        assert "_start:" in out

    def test_compile_to_file(self, tmp_path):
        src = tmp_path / "k.c"
        src.write_text("void main() { print_int(7); }")
        out = tmp_path / "k.s"
        assert main(["compile", str(src), "-o", str(out)]) == 0
        assert "_start:" in out.read_text()
        # The emitted assembly must itself assemble and run.
        from repro.functional.emulator import Emulator
        from repro.isa.assembler import assemble
        emu = Emulator(assemble(out.read_text()))
        emu.run()
        assert emu.output == [7]

    def test_compile_error_exit_code(self, tmp_path, capsys):
        src = tmp_path / "bad.c"
        src.write_text("void main() { x = ; }")
        assert main(["compile", str(src)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent/file.c"]) == 1
