"""Tests for the TAGE-style predictor."""

import random

import pytest

from repro.branch.predictors import BranchPredictorUnit
from repro.branch.tage import TagePredictor, _fold


class TestFold:
    def test_fold_zero_bits(self):
        assert _fold(0xFFFF, 16, 0) == 0

    def test_fold_within_range(self):
        for value in (0, 1, 0xDEADBEEF, (1 << 64) - 1):
            assert 0 <= _fold(value, 64, 10) < (1 << 10)

    def test_fold_identity_when_fits(self):
        assert _fold(0x2A, 6, 6) == 0x2A

    def test_fold_is_deterministic(self):
        assert _fold(12345, 32, 8) == _fold(12345, 32, 8)


class TestTage:
    def test_construction_geometric_histories(self):
        predictor = TagePredictor(num_tables=4, min_history=4,
                                  max_history=64)
        lengths = [t.history_length for t in predictor.tables]
        assert lengths == sorted(lengths)
        assert lengths[0] == 4 and lengths[-1] == 64
        assert len(set(lengths)) == 4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TagePredictor(num_tables=0)
        with pytest.raises(ValueError):
            TagePredictor(min_history=8, max_history=4)

    def test_learns_strong_bias(self):
        predictor = TagePredictor(table_bits=8)
        for _ in range(50):
            predictor.update(0x1000, True)
        assert predictor.predict(0x1000)
        for _ in range(50):
            predictor.update(0x1000, False)
        assert not predictor.predict(0x1000)

    def test_learns_history_pattern_better_than_bimodal(self):
        """A short repeating pattern (TTN) defeats per-pc counters but is
        capturable with global history."""
        pattern = [True, True, False]

        def run(predictor):
            correct = 0
            for i in range(1200):
                taken = pattern[i % 3]
                if i >= 600:
                    correct += predictor.predict(0x4000) == taken
                predictor.update(0x4000, taken)
            return correct / 600

        from repro.branch.predictors import BimodalPredictor
        tage_acc = run(TagePredictor(table_bits=10))
        bimodal = BimodalPredictor(table_bits=10)
        bim_correct = 0
        for i in range(1200):
            taken = pattern[i % 3]
            if i >= 600:
                bim_correct += bimodal.predict(0x4000) == taken
            bimodal.update(0x4000, taken)
        assert tage_acc > 0.95
        assert tage_acc > bim_correct / 600

    def test_predict_does_not_mutate(self):
        predictor = TagePredictor(table_bits=8)
        rng = random.Random(5)
        for _ in range(200):
            predictor.update(rng.randrange(0, 1 << 14) * 4,
                             rng.random() < 0.5)
        snapshot = ([list(t.ctr) for t in predictor.tables],
                    list(predictor.base), predictor.history)
        for _ in range(50):
            predictor.predict(rng.randrange(0, 1 << 14) * 4)
            predictor.predict(0x1234, history=rng.getrandbits(16))
        assert snapshot == ([list(t.ctr) for t in predictor.tables],
                            list(predictor.base), predictor.history)

    def test_history_bounded(self):
        predictor = TagePredictor(max_history=32)
        for i in range(100):
            predictor.update(0x40 * i, i % 2 == 0)
        assert predictor.history < (1 << 32)

    def test_random_stream_no_crash_counters_bounded(self):
        predictor = TagePredictor(table_bits=6, num_tables=3)
        rng = random.Random(1)
        for _ in range(5000):
            predictor.update(rng.randrange(0, 1 << 12) * 4,
                             rng.random() < 0.3)
        for table in predictor.tables:
            assert all(-4 <= c <= 3 for c in table.ctr)
            assert all(0 <= u <= 3 for u in table.useful)


class TestTageInUnit:
    def test_unit_kind_tage(self):
        unit = BranchPredictorUnit(kind="tage", table_bits=10)
        from repro.isa.instructions import Instruction
        ins = Instruction("beq", rs1=1, rs2=2, target=0x2000)
        ins.pc = 0x1000
        for _ in range(40):
            unit.predict_and_update(ins, taken=True, next_pc=0x2000)
        before = unit.cond_mispredicts
        unit.predict_and_update(ins, taken=True, next_pc=0x2000)
        assert unit.cond_mispredicts == before  # fully trained

    def test_unit_peek_uses_spec_history(self):
        unit = BranchPredictorUnit(kind="tage", table_bits=10)
        from repro.isa.instructions import Instruction
        ins = Instruction("beq", rs1=1, rs2=2, target=0x2000)
        ins.pc = 0x1000
        spec = unit.speculative_state()
        first = unit.peek_next(ins, spec)
        assert first in (0x2000, ins.fall_through)
        # Peeking advanced the speculative history only.
        assert unit.direction.history == 0

    def test_two_tage_units_lockstep(self):
        from repro.isa.instructions import Instruction
        rng = random.Random(9)
        a = BranchPredictorUnit(kind="tage", table_bits=8)
        b = BranchPredictorUnit(kind="tage", table_bits=8)
        branches = []
        for i in range(4):
            ins = Instruction("beq", rs1=1, rs2=2, target=0x8000 + 64 * i)
            ins.pc = 0x1000 + 16 * i
            branches.append(ins)
        for _ in range(600):
            ins = rng.choice(branches)
            taken = rng.random() < 0.5
            next_pc = ins.target if taken else ins.fall_through
            assert a.predict_and_update(ins, taken, next_pc) == \
                b.predict_and_update(ins, taken, next_pc)
