"""Observational equivalence of the compiled block layers.

Three JIT layers render per-basic-block superhandlers from audited
template tables (simcheck SC003): the functional superblocks
(:mod:`repro.functional.superblock`), the timing blocks
(:mod:`repro.core.timingblock`) and the wrong-path stream blocks
(:mod:`repro.wrongpath.streamblock`).  Each is a pure speedup: running
a compiled block must be bit-identical to iterating the scalar
reference path over the same instructions.  These tests drive the two
variants of the same run against each other:

* hypothesis-generated random programs through the functional frontend
  (correct path) and the wrong-path emulator, compiled vs scalar;
* full ``Simulator`` runs per technique with the timing and stream
  layers force-disabled, compared stat-for-stat via ``to_dict``;
* the vectorized data-cache batch path against the per-access
  reference implementation (latencies, counters, warm state);
* CodeCache invalidation of the compiled pc-maps on insert and
  snapshot restore;
* the process-wide artifact pools and the per-program shared
  superblock cache reusing compiled blocks across fresh instances.
"""

import contextlib

import pytest
from hypothesis import given, settings, strategies as st

from repro import CoreConfig, Simulator
from repro.cache.hierarchy import CacheHierarchy
from repro.core import ooo, timingblock
from repro.functional import superblock
from repro.functional.emulator import Emulator
from repro.isa.assembler import assemble
from repro.workloads import build_workload
from repro.wrongpath import base as wp_base
from repro.wrongpath import streamblock


# ---------------------------------------------------------------------------
# Scalar-forcing helpers: each JIT layer has a falsy "no block here"
# value its hot caller falls back from, so a compiler that always
# returns it forces the scalar reference path without touching any
# simulation semantics.
# ---------------------------------------------------------------------------

class _DudSuperblocks:
    """A superblock cache that never compiles anything."""

    def __init__(self):
        self._correct = {}
        self._wrong = {}

    def compile_correct(self, pc):
        return superblock.UNCOMPILABLE

    def compile_wrongpath(self, pc):
        return superblock.UNCOMPILABLE


@contextlib.contextmanager
def _eager_thresholds():
    """Compile every block on first execution (all three layers)."""
    saved = (superblock.COMPILE_THRESHOLD,
             timingblock.COMPILE_THRESHOLD, wp_base.COMPILE_THRESHOLD)
    superblock.COMPILE_THRESHOLD = 1
    timingblock.COMPILE_THRESHOLD = 1
    wp_base.COMPILE_THRESHOLD = 1
    try:
        yield
    finally:
        (superblock.COMPILE_THRESHOLD,
         timingblock.COMPILE_THRESHOLD,
         wp_base.COMPILE_THRESHOLD) = saved


@contextlib.contextmanager
def _all_layers_scalar():
    """Force every layer's hot caller down its scalar reference path."""
    saved_shared = superblock.SuperblockCache.shared
    saved_stream = wp_base._compile_stream_block
    saved_timing = ooo.OoOCore._compile_timing
    superblock.SuperblockCache.shared = classmethod(
        lambda cls, program: _DudSuperblocks())
    wp_base._compile_stream_block = lambda core, pc: ()
    ooo.OoOCore._compile_timing = lambda self, pc: ()
    try:
        yield
    finally:
        superblock.SuperblockCache.shared = saved_shared
        wp_base._compile_stream_block = saved_stream
        ooo.OoOCore._compile_timing = saved_timing


# ---------------------------------------------------------------------------
# Random program generation (hypothesis).
# ---------------------------------------------------------------------------

REGS = ("t0", "t1", "t2", "t3", "t4", "t5", "t6",
        "a0", "a1", "a2", "a3", "a4", "a5")
FREGS = ("ft0", "ft1", "ft2", "ft3")
BUF_WORDS = 16

INT_RR = ("add", "sub", "and", "or", "xor", "sll", "srl", "sra",
          "slt", "sltu", "mul", "mulh", "div", "rem", "divu", "remu",
          "min", "max")
INT_RI = ("addi", "andi", "ori", "xori", "slti", "sltiu")
SHIFT_I = ("slli", "srli", "srai")
FP_RR = ("fadd", "fsub", "fmul", "fmin", "fmax", "fdiv")
FP_UN = ("fmv", "fneg", "fabs", "fsqrt")
FP_CMP = ("feq", "flt", "fle")
BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")

_reg = st.sampled_from(REGS)
_freg = st.sampled_from(FREGS)
_imm = st.integers(-2048, 2047)
_fimm = st.sampled_from((0.0, 1.0, -1.5, 2.0, 0.5, 3.25, -2.75, 100.0))


def _ops(aligned_only):
    word_off = st.integers(0, BUF_WORDS - 1).map(lambda w: w * 4)
    byte_off = st.integers(0, BUF_WORDS * 4 - 1)
    mem_off = word_off if aligned_only else byte_off
    return st.one_of(
        st.tuples(st.sampled_from(INT_RR), _reg, _reg, _reg).map(
            lambda t: f"{t[0]} {t[1]}, {t[2]}, {t[3]}"),
        st.tuples(st.sampled_from(INT_RI), _reg, _reg, _imm).map(
            lambda t: f"{t[0]} {t[1]}, {t[2]}, {t[3]}"),
        st.tuples(st.sampled_from(SHIFT_I), _reg, _reg,
                  st.integers(0, 31)).map(
            lambda t: f"{t[0]} {t[1]}, {t[2]}, {t[3]}"),
        st.tuples(_reg, st.integers(-2 ** 20, 2 ** 20)).map(
            lambda t: f"li {t[0]}, {t[1]}"),
        st.tuples(_freg, _fimm).map(lambda t: f"fli {t[0]}, {t[1]}"),
        st.tuples(st.sampled_from(FP_RR), _freg, _freg, _freg).map(
            lambda t: f"{t[0]} {t[1]}, {t[2]}, {t[3]}"),
        st.tuples(st.sampled_from(FP_UN), _freg, _freg).map(
            lambda t: f"{t[0]} {t[1]}, {t[2]}"),
        st.tuples(st.sampled_from(FP_CMP), _reg, _freg, _freg).map(
            lambda t: f"{t[0]} {t[1]}, {t[2]}, {t[3]}"),
        st.tuples(_freg, _reg).map(lambda t: f"fcvt.s.w {t[0]}, {t[1]}"),
        st.tuples(_reg, _freg).map(lambda t: f"fcvt.w.s {t[0]}, {t[1]}"),
        st.tuples(st.sampled_from(("lw", "sw", "flw", "fsw")),
                  word_off).map(
            lambda t: f"{t[0]} {'ft0' if t[0][0] == 'f' else 't0'},"
                      f" {t[1]}(s0)"),
        st.tuples(st.sampled_from(("lb", "lbu", "sb")), _reg,
                  byte_off).map(
            lambda t: f"{t[0]} {t[1]}, {t[2]}(s0)"),
        st.tuples(st.sampled_from(("lw", "sw")), _reg, mem_off).map(
            lambda t: f"{t[0]} {t[1]}, {t[2]}(s0)"),
    )


@st.composite
def _bodies(draw, aligned_only=True):
    """A list of source lines: random straight-line ops plus forward
    conditional branches (labels always resolve later in the body)."""
    ops = draw(st.lists(_ops(aligned_only), min_size=3, max_size=24))
    branches = draw(st.lists(
        st.tuples(st.integers(0, max(0, len(ops) - 1)),
                  st.integers(1, 3), st.sampled_from(BRANCHES),
                  _reg, _reg),
        max_size=3))
    labels = {}  # insertion index -> [label names]
    lines = {}   # op index -> [branch lines before the op]
    for n, (pos, skip, op, r1, r2) in enumerate(branches):
        label = f"fwd_{n}"
        lines.setdefault(pos, []).append(f"{op} {r1}, {r2}, {label}")
        labels.setdefault(min(pos + skip, len(ops)), []).append(label)
    body = []
    for idx, op in enumerate(ops):
        body.extend(lines.get(idx, []))
        body.extend(f"{lab}:" for lab in labels.get(idx, []))
        body.append(op)
    body.extend(f"{lab}:" for lab in labels.get(len(ops), []))
    return body


def _program(body):
    words = ", ".join(["0"] * BUF_WORDS)
    text = "\n".join("    " + line if not line.endswith(":") else line
                     for line in body)
    return assemble(f"""
    .data
    buf: .word {words}
    .text
    main:
        la s0, buf
    body:
{text}
        li a7, 93
        ecall
    """)


def _arch(emu):
    return (emu.instret, emu.halted, emu.exit_code, list(emu.x),
            [v.hex() for v in emu.f], emu.memory.digest(),
            [v.hex() if isinstance(v, float) else v
             for v in emu.output])


# ---------------------------------------------------------------------------
# Functional layer: correct path and wrong path, compiled vs scalar.
# ---------------------------------------------------------------------------

class TestFunctionalEquivalence:
    def _produce_all(self, program, scalar, batch):
        from repro.functional.frontend import FunctionalFrontend
        fe = FunctionalFrontend(program)
        if scalar:
            fe.emulator.superblocks = _DudSuperblocks()
        stream = []
        while True:
            out = fe.produce_batch(batch)
            stream.extend((d.seq, d.pc, d.next_pc, d.taken, d.mem_addr)
                          for d in out)
            if len(out) < batch:
                break
        if not scalar:
            assert fe.superblock_instructions > 0
        return stream, _arch(fe.emulator)

    @settings(max_examples=40, deadline=None)
    @given(body=_bodies(), batch=st.integers(1, 48))
    def test_correct_path_matches_scalar(self, body, batch):
        program = _program(body)
        with _eager_thresholds():
            compiled = self._produce_all(program, False, batch)
        scalar = self._produce_all(program, True, batch)
        assert compiled == scalar

    @settings(max_examples=40, deadline=None)
    @given(body=_bodies(aligned_only=False), budget=st.integers(1, 40))
    def test_wrong_path_matches_scalar(self, body, budget):
        # Misaligned accesses allowed: a mid-block fault must leave the
        # same partial record stream as the scalar walk.
        program = _program(body)
        start = program.symbol("body")

        def walk(scalar):
            emu = Emulator(program)
            if scalar:
                emu.superblocks = _DudSuperblocks()
            emu.step()  # la s0, buf — so addresses are real
            records = emu.emulate_wrong_path(start, budget)
            return ([(r.instr.op, r.pc, r.mem_addr, r.next_pc)
                     for r in records], _arch(emu), emu.state.pc)

        with _eager_thresholds():
            compiled = walk(False)
        assert compiled == walk(True)


# ---------------------------------------------------------------------------
# Timing + stream layers: whole-simulation equivalence per technique.
# ---------------------------------------------------------------------------

CASES = (("gap.bfs", "conv"), ("gap.bfs", "wpemul"),
         ("spec.int.xz_like", "instrec"), ("spec.int.xz_like", "nowp"))


def _result_dict(sim):
    d = sim.run().to_dict()
    d.pop("wall_seconds")
    return d


@pytest.mark.parametrize("name,technique", CASES)
def test_simulation_matches_scalar_paths(name, technique):
    workload = build_workload(name, scale="tiny", check=False)

    def run():
        sim = Simulator(workload.program, config=CoreConfig.scaled(),
                        technique=technique, max_instructions=4000,
                        name=name)
        return _result_dict(sim), sim

    fast, fast_sim = run()
    assert fast_sim.frontend.superblock_instructions > 0
    assert fast_sim.core.timingblock_instructions > 0
    if technique != "nowp":
        assert fast_sim.core.streamblock_instructions > 0

    with _all_layers_scalar():
        slow, slow_sim = run()
    assert slow_sim.core.timingblock_instructions == 0
    assert slow_sim.core.streamblock_instructions == 0
    assert fast == slow


# ---------------------------------------------------------------------------
# Vectorized cache batch path vs the per-access reference.
# ---------------------------------------------------------------------------

class TestCacheBatchOracle:
    @settings(max_examples=40, deadline=None)
    @given(accesses=st.lists(
        st.tuples(st.integers(0, 1 << 18).map(lambda a: a & ~3),
                  st.booleans(), st.integers(0, 4096)),
        min_size=1, max_size=64),
        wrong_path=st.booleans())
    def test_batch_matches_sequential(self, accesses, wrong_path):
        cfg = CoreConfig.scaled()
        batch_h = CacheHierarchy.from_config(cfg)
        ref_h = CacheHierarchy.from_config(cfg)
        addrs = [a for a, _, _ in accesses]
        writes = [w for _, w, _ in accesses]
        pcs = [p for _, _, p in accesses]
        got = batch_h.access_data_batch(addrs, writes, pcs,
                                        wrong_path=wrong_path)
        want = [ref_h.access_data(a, w, p, wrong_path)
                for a, w, p in accesses]
        assert got == want
        assert batch_h.stats() == ref_h.stats()
        assert batch_h.state_dict() == ref_h.state_dict()

    def test_batch_optional_arguments(self):
        cfg = CoreConfig.scaled()
        batch_h = CacheHierarchy.from_config(cfg)
        ref_h = CacheHierarchy.from_config(cfg)
        addrs = [64 * n for n in range(32)]
        assert batch_h.access_data_batch(addrs) == \
            [ref_h.access_data(a) for a in addrs]
        assert batch_h.stats() == ref_h.stats()


# ---------------------------------------------------------------------------
# CodeCache: compiled pc-maps must die with the pc mapping they mirror.
# ---------------------------------------------------------------------------

class TestCodeCacheCompiledMaps:
    def _warm_cache(self, technique="conv"):
        workload = build_workload("gap.bfs", scale="tiny", check=False)
        sim = Simulator(workload.program, config=CoreConfig.scaled(),
                        technique=technique, max_instructions=4000,
                        name="gap.bfs")
        sim.run()
        return sim, workload.program

    def test_insert_clears_compiled_maps(self):
        sim, program = self._warm_cache()
        cc = sim.core.code_cache
        assert cc._timing and cc._wpstream
        # A *new* pc (re-inserting a cached one is a no-op) shifts
        # block boundaries, so every pc-keyed compiled attachment must
        # be dropped.
        instr = next(ins for pc, ins in program.pc_index.items()
                     if pc not in cc._entries)
        cc.insert(instr)
        assert not cc._timing and not cc._wpstream

    def test_load_state_clears_compiled_maps_and_warmups(self):
        sim, program = self._warm_cache()
        cc = sim.core.code_cache
        assert cc._timing and cc._wpstream
        cc.load_state(cc.state_dict(), program.pc_index)
        assert not cc._timing and not cc._wpstream
        assert not cc._timing_warm and not cc._wpstream_warm

    def test_restored_cache_recompiles(self):
        # After a snapshot-style restore the compiled maps are empty but
        # the next run repopulates them from the artifact pools.
        sim, program = self._warm_cache()
        cc = sim.core.code_cache
        cc.load_state(cc.state_dict(), program.pc_index)
        sim2, _ = self._warm_cache()
        assert sim2.core.timingblock_instructions > 0


# ---------------------------------------------------------------------------
# Artifact sharing: pure compiled blocks are reused, never rebuilt.
# ---------------------------------------------------------------------------

class TestArtifactReuse:
    def test_shared_superblock_cache_is_per_program(self):
        program = _program(["addi t0, t0, 1", "addi t1, t1, 2"])
        emu1, emu2 = Emulator(program), Emulator(program)
        assert emu1.superblocks is emu2.superblocks
        other = _program(["addi t2, t2, 3"])
        assert Emulator(other).superblocks is not emu1.superblocks

    def test_timing_and_stream_pools_reused_across_simulators(self):
        workload = build_workload("gap.bfs", scale="tiny", check=False)

        def run():
            sim = Simulator(workload.program,
                            config=CoreConfig.scaled(),
                            technique="conv", max_instructions=4000,
                            name="gap.bfs")
            sim.run()
            return sim

        run()
        timing_pool = len(timingblock._POOL)
        stream_pool = len(streamblock._POOL)
        sim = run()
        # Same program + config: the second simulator compiles nothing
        # new, yet still runs through compiled blocks.
        assert len(timingblock._POOL) == timing_pool
        assert len(streamblock._POOL) == stream_pool
        assert sim.core.timingblock_instructions > 0
        assert sim.core.streamblock_instructions > 0
