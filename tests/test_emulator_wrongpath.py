"""Unit tests for functional wrong-path emulation (the 'Pin ExecuteAt'
analogue): checkpoint/redirect/suppress/restore semantics."""

from repro.functional.emulator import Emulator
from repro.isa.assembler import assemble


def make_emulator(source: str) -> Emulator:
    return Emulator(assemble(source))


class TestWrongPathEmulation:
    def test_registers_restored_after_walk(self):
        emu = make_emulator("""
        main:
            li t0, 1
            li t1, 2
        wrong:
            li t0, 99
            li t1, 98
            li a7, 93
            ecall
        """)
        emu.step()
        emu.step()
        records = emu.emulate_wrong_path(emu.program.symbol("wrong"), 10)
        # Three li's (including "li a7, 93"), then the walk stops at ecall.
        assert [r.instr.op for r in records] == ["li", "li", "li"]
        assert emu.state.x[5] == 1 and emu.state.x[6] == 2
        assert emu.state.pc == emu.program.symbol("wrong")

    def test_stores_suppressed_but_addresses_recorded(self):
        emu = make_emulator("""
        .data
        v: .word 7
        .text
        main:
            la t0, v
        wrong:
            li t1, 42
            sw t1, 0(t0)
            li a7, 93
            ecall
        """)
        emu.step()
        records = emu.emulate_wrong_path(emu.program.symbol("wrong"), 10)
        store = records[1]
        assert store.instr.op == "sw"
        assert store.mem_addr == emu.program.symbol("v")
        assert emu.memory.load_word(emu.program.symbol("v")) == 7  # intact

    def test_loads_from_unmapped_memory_read_zero(self):
        emu = make_emulator("""
        main:
            li t0, 0x5000000
        wrong:
            lw t1, 0(t0)
            li a7, 93
            ecall
        """)
        emu.step()
        records = emu.emulate_wrong_path(emu.program.symbol("wrong"), 10)
        assert records[0].mem_addr == 0x5000000

    def test_stops_on_syscall(self):
        emu = make_emulator("""
        main:
            nop
        wrong:
            ecall
        """)
        emu.step()
        records = emu.emulate_wrong_path(emu.program.symbol("wrong"), 10)
        assert records == []

    def test_stops_on_text_hole(self):
        emu = make_emulator("main:\n nop\n nop\n")
        emu.step()
        end = emu.program.text_end
        records = emu.emulate_wrong_path(end, 10)
        assert records == []

    def test_stops_on_fault_without_crashing(self):
        emu = make_emulator("""
        main:
            li t0, 3       # misaligned address
        wrong:
            lw t1, 0(t0)
            li t2, 5
            li a7, 93
            ecall
        """)
        emu.step()
        records = emu.emulate_wrong_path(emu.program.symbol("wrong"), 10)
        assert records == []  # faulting load terminates the walk
        assert emu.state.x[5] == 3  # state restored

    def test_respects_instruction_limit(self):
        emu = make_emulator("""
        main:
        loop:
            addi t0, t0, 1
            j loop
        """)
        emu.step()
        records = emu.emulate_wrong_path(emu.program.entry, 25)
        assert len(records) == 25

    def test_wrong_path_follows_actual_branch_semantics(self):
        emu = make_emulator("""
        main:
            li t0, 5
        wrong:
            beqz t0, never     # not taken: t0 == 5
            addi t1, t1, 1
            li a7, 93
            ecall
        never:
            addi t2, t2, 1
            li a7, 93
            ecall
        """)
        emu.step()
        records = emu.emulate_wrong_path(emu.program.symbol("wrong"), 10)
        pcs = [r.pc for r in records]
        assert emu.program.symbol("never") not in pcs

    def test_output_suppressed_on_wrong_path(self):
        emu = make_emulator("""
        main:
            li a0, 7
        wrong:
            li a7, 1
            li a0, 9
            li a7, 93
            ecall
        """)
        emu.step()
        emu.emulate_wrong_path(emu.program.symbol("wrong"), 10)
        assert emu.output == []

    def test_next_pc_recorded_per_record(self):
        emu = make_emulator("""
        main:
            nop
        wrong:
            j target
        target:
            li a7, 93
            ecall
        """)
        emu.step()
        records = emu.emulate_wrong_path(emu.program.symbol("wrong"), 1)
        assert records[0].next_pc == emu.program.symbol("target")
