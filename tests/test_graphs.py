"""Tests for synthetic graph generation."""

import numpy as np
import pytest

from repro.workloads import graphs


class TestCSRGraph:
    def test_well_formed(self):
        g = graphs.uniform_random(100, 5, seed=1)
        assert g.num_nodes == 100
        assert g.row_ptr[0] == 0
        assert g.row_ptr[-1] == g.num_edges
        assert np.all(np.diff(g.row_ptr) >= 0)
        assert np.all(g.col >= 0) and np.all(g.col < 100)

    def test_neighbors_sorted_unique_no_self_loops(self):
        g = graphs.power_law(200, 8, seed=3)
        for u in range(g.num_nodes):
            neighbors = g.neighbors(u)
            assert np.all(np.diff(neighbors) > 0)  # sorted & unique
            assert u not in neighbors

    def test_deterministic(self):
        a = graphs.uniform_random(64, 4, seed=9)
        b = graphs.uniform_random(64, 4, seed=9)
        assert np.array_equal(a.col, b.col)
        c = graphs.uniform_random(64, 4, seed=10)
        assert not np.array_equal(a.col, c.col) or a.num_edges != c.num_edges

    def test_degree_accessors(self):
        g = graphs.uniform_random(50, 4, seed=2)
        assert g.degree(0) == len(g.neighbors(0))
        assert np.sum(g.out_degrees()) == g.num_edges

    def test_malformed_row_ptr_rejected(self):
        with pytest.raises(ValueError):
            graphs.CSRGraph(np.array([1, 2]), np.array([0]))


class TestGenerators:
    def test_power_law_is_skewed(self):
        g = graphs.power_law(1000, 8, seed=5)
        in_degrees = np.bincount(g.col, minlength=1000)
        # Hubs: the max in-degree dwarfs the mean.
        assert in_degrees.max() > 8 * in_degrees.mean()

    def test_uniform_is_not_skewed(self):
        g = graphs.uniform_random(1000, 8, seed=5)
        in_degrees = np.bincount(g.col, minlength=1000)
        assert in_degrees.max() < 6 * max(in_degrees.mean(), 1)

    def test_symmetric_graphs_are_symmetric(self):
        g = graphs.power_law(150, 5, seed=7, symmetric=True)
        edges = set()
        for u in range(g.num_nodes):
            for v in g.neighbors(u):
                edges.add((u, int(v)))
        for u, v in edges:
            assert (v, u) in edges

    def test_with_weights(self):
        g = graphs.with_weights(graphs.uniform_random(50, 4, seed=1),
                                seed=2, max_weight=10)
        assert g.weights is not None
        assert len(g.weights) == g.num_edges
        assert g.weights.min() >= 1 and g.weights.max() <= 10

    @pytest.mark.parametrize("fn", [graphs.uniform_random,
                                    graphs.power_law])
    def test_invalid_parameters(self, fn):
        with pytest.raises(ValueError):
            fn(1, 4)
        with pytest.raises(ValueError):
            fn(10, 0)

    def test_power_law_skew_validation(self):
        with pytest.raises(ValueError):
            graphs.power_law(10, 2, skew=0.5)
