"""Differential testing of minicc + emulator against Python semantics.

Hypothesis generates random integer expression trees; we compile them with
minicc, execute them on the functional emulator, and compare against a
Python evaluator implementing the ISA's 32-bit semantics.  This closes the
loop on the whole compile-assemble-emulate stack.
"""

from hypothesis import given, settings, strategies as st

from repro.functional.emulator import Emulator
from repro.minicc import compile_to_program

MASK = 0xFFFFFFFF


def s32(value: int) -> int:
    value &= MASK
    return value - (1 << 32) if value & 0x80000000 else value


class Node:
    """Expression tree node rendering to minicc and evaluating in Python."""

    def __init__(self, op, left=None, right=None, value=None):
        self.op = op
        self.left = left
        self.right = right
        self.value = value

    def render(self) -> str:
        if self.op == "lit":
            return str(self.value)
        if self.op == "neg":
            return f"(-{self.left.render()})"
        if self.op == "not":
            return f"(~{self.left.render()})"
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def evaluate(self) -> int:
        """Evaluate with the ISA's 32-bit wrapping semantics (signed)."""
        if self.op == "lit":
            return s32(self.value)
        if self.op == "neg":
            return s32(-self.left.evaluate())
        if self.op == "not":
            return s32(~self.left.evaluate())
        a = self.left.evaluate()
        b = self.right.evaluate()
        if self.op == "+":
            return s32(a + b)
        if self.op == "-":
            return s32(a - b)
        if self.op == "*":
            return s32(a * b)
        if self.op == "/":
            if b == 0:
                return -1
            if a == -(1 << 31) and b == -1:
                return a
            return s32(int(a / b))  # truncate toward zero
        if self.op == "%":
            if b == 0:
                return a
            if a == -(1 << 31) and b == -1:
                return 0
            return s32(a - int(a / b) * b)
        if self.op == "&":
            return s32(a & b)
        if self.op == "|":
            return s32(a | b)
        if self.op == "^":
            return s32(a ^ b)
        if self.op == "<<":
            return s32((a & MASK) << (b & 31))
        if self.op == ">>":
            return s32(a >> (b & 31))  # arithmetic on signed a
        if self.op == "<":
            return int(a < b)
        if self.op == ">":
            return int(a > b)
        if self.op == "==":
            return int(a == b)
        if self.op == "!=":
            return int(a != b)
        raise AssertionError(self.op)


_literals = st.integers(min_value=-1000, max_value=1000).map(
    lambda v: Node("lit", value=v))

_binops = st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^",
                           "<<", ">>", "<", ">", "==", "!="])


def _trees(depth: int):
    if depth == 0:
        return _literals
    sub = _trees(depth - 1)
    return st.one_of(
        _literals,
        st.builds(lambda op, l, r: Node(op, l, r), _binops, sub, sub),
        st.builds(lambda l: Node("neg", l), sub),
        st.builds(lambda l: Node("not", l), sub),
    )


def run_expression(expr: Node) -> int:
    source = "void main() { print_int(%s); }" % expr.render()
    emu = Emulator(compile_to_program(source))
    emu.run(200_000)
    assert emu.halted
    return emu.output[0]


@settings(max_examples=60, deadline=None)
@given(_trees(3))
def test_expression_semantics_match_python(expr):
    assert run_expression(expr) == expr.evaluate()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1,
                max_size=20))
def test_loop_accumulation_matches(values):
    """A data-driven accumulation loop over an initialized global array."""
    initializer = ", ".join(str(v) for v in values)
    source = f"""
    int vals[{len(values)}] = {{{initializer}}};
    void main() {{
        int acc = 0;
        for (int i = 0; i < {len(values)}; i += 1) {{
            if (vals[i] > 0) {{
                acc += vals[i] * 3;
            }} else {{
                acc -= vals[i];
            }}
        }}
        print_int(acc);
    }}
    """
    emu = Emulator(compile_to_program(source))
    emu.run(100_000)
    expected = sum(v * 3 if v > 0 else -v for v in values)
    assert emu.output == [expected]


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=30),
       st.integers(min_value=1, max_value=12))
def test_recursive_function_matches(n, divisor):
    source = f"""
    int collatz_steps(int x, int limit) {{
        if (x <= 1 || limit == 0) return 0;
        if (x % 2 == 0) return 1 + collatz_steps(x / 2, limit - 1);
        return 1 + collatz_steps(3 * x + 1, limit - 1);
    }}
    void main() {{
        print_int(collatz_steps({n} + {divisor}, 40));
    }}
    """

    def steps(x, limit):
        if x <= 1 or limit == 0:
            return 0
        if x % 2 == 0:
            return 1 + steps(x // 2, limit - 1)
        return 1 + steps(3 * x + 1, limit - 1)

    emu = Emulator(compile_to_program(source))
    emu.run(500_000)
    assert emu.output == [steps(n + divisor, 40)]
