"""Unit tests for the functional emulator's instruction semantics."""

import pytest

from repro.functional.emulator import EmulationFault, Emulator
from repro.isa.assembler import assemble


def run_asm(body: str, max_instructions: int = 100_000) -> Emulator:
    """Assemble, run to exit, return the emulator."""
    source = body + "\n  li a7, 93\n  ecall\n"
    emu = Emulator(assemble(source))
    emu.run(max_instructions)
    assert emu.halted, "program did not exit"
    return emu


def reg(emu: Emulator, name_idx: int) -> int:
    return emu.state.x[name_idx]


class TestIntegerAlu:
    def test_add_sub_wrap(self):
        emu = run_asm("""
            li t0, 0xFFFFFFFF
            addi t1, t0, 1       # wraps to 0
            li t2, 5
            sub t3, x0, t2       # -5
        """)
        assert reg(emu, 6) == 0
        assert reg(emu, 28) == 0xFFFFFFFB

    def test_logic_ops(self):
        emu = run_asm("""
            li t0, 0b1100
            li t1, 0b1010
            and t2, t0, t1
            or  t3, t0, t1
            xor t4, t0, t1
        """)
        assert reg(emu, 7) == 0b1000
        assert reg(emu, 28) == 0b1110
        assert reg(emu, 29) == 0b0110

    def test_shifts(self):
        emu = run_asm("""
            li t0, 0x80000000
            srai t1, t0, 4       # arithmetic: sign extends
            srli t2, t0, 4       # logical
            li t3, 1
            slli t4, t3, 31
        """)
        assert reg(emu, 6) == 0xF8000000
        assert reg(emu, 7) == 0x08000000
        assert reg(emu, 29) == 0x80000000

    def test_shift_amount_masked_to_5_bits(self):
        emu = run_asm("""
            li t0, 1
            li t1, 33
            sll t2, t0, t1       # shifts by 1
        """)
        assert reg(emu, 7) == 2

    def test_slt_signed_vs_unsigned(self):
        emu = run_asm("""
            li t0, -1
            li t1, 1
            slt t2, t0, t1       # -1 < 1 signed: 1
            sltu t3, t0, t1      # 0xFFFFFFFF < 1 unsigned: 0
        """)
        assert reg(emu, 7) == 1
        assert reg(emu, 28) == 0

    def test_mul_and_mulh(self):
        emu = run_asm("""
            li t0, 0x10000
            li t1, 0x10000
            mul t2, t0, t1       # low 32 bits = 0
            mulh t3, t0, t1      # high = 1
        """)
        assert reg(emu, 7) == 0
        assert reg(emu, 28) == 1

    def test_signed_division_truncates(self):
        emu = run_asm("""
            li t0, -7
            li t1, 2
            div t2, t0, t1       # -3
            rem t3, t0, t1       # -1
        """)
        assert reg(emu, 7) == 0xFFFFFFFD
        assert reg(emu, 28) == 0xFFFFFFFF

    def test_division_by_zero_riscv_semantics(self):
        emu = run_asm("""
            li t0, 9
            div t1, t0, x0       # all ones
            rem t2, t0, x0       # dividend
            divu t3, t0, x0
        """)
        assert reg(emu, 6) == 0xFFFFFFFF
        assert reg(emu, 7) == 9
        assert reg(emu, 28) == 0xFFFFFFFF

    def test_min_max(self):
        emu = run_asm("""
            li t0, -3
            li t1, 2
            min t2, t0, t1
            max t3, t0, t1
        """)
        assert reg(emu, 7) == 0xFFFFFFFD
        assert reg(emu, 28) == 2


class TestFloat:
    def test_arith(self):
        emu = run_asm("""
            fli ft0, 1.5
            fli ft1, 2.0
            fadd ft2, ft0, ft1
            fmul ft3, ft0, ft1
            fdiv ft4, ft1, ft0
        """)
        f = emu.state.f
        assert f[2] == 3.5 and f[3] == 3.0
        assert f[4] == pytest.approx(4.0 / 3.0)

    def test_sqrt_and_neg(self):
        emu = run_asm("""
            fli ft0, 9.0
            fsqrt ft1, ft0
            fneg ft2, ft1
            fabs ft3, ft2
        """)
        f = emu.state.f
        assert f[1] == 3.0 and f[2] == -3.0 and f[3] == 3.0

    def test_conversions(self):
        emu = run_asm("""
            li t0, -7
            fcvt.s.w ft0, t0
            fli ft1, 3.9
            fcvt.w.s t1, ft1     # truncates toward zero
        """)
        assert emu.state.f[0] == -7.0
        assert reg(emu, 6) == 3

    def test_compares_write_int(self):
        emu = run_asm("""
            fli ft0, 1.0
            fli ft1, 2.0
            flt t0, ft0, ft1
            fle t1, ft1, ft0
            feq t2, ft0, ft0
        """)
        assert reg(emu, 5) == 1 and reg(emu, 6) == 0 and reg(emu, 7) == 1

    def test_fdiv_by_zero_is_inf(self):
        emu = run_asm("""
            fli ft0, 1.0
            fli ft1, 0.0
            fdiv ft2, ft0, ft1
        """)
        assert emu.state.f[2] == float("inf")


class TestMemoryOps:
    def test_word_store_load(self):
        emu = run_asm("""
        .data
        buf: .space 64
        .text
        main:
            la t0, buf
            li t1, 0xCAFE
            sw t1, 8(t0)
            lw t2, 8(t0)
        """)
        assert reg(emu, 7) == 0xCAFE

    def test_byte_ops_sign_extension(self):
        emu = run_asm("""
        .data
        buf: .space 8
        .text
        main:
            la t0, buf
            li t1, 0x80
            sb t1, 0(t0)
            lb t2, 0(t0)       # sign-extends
            lbu t3, 0(t0)      # zero-extends
        """)
        assert reg(emu, 7) == 0xFFFFFF80
        assert reg(emu, 28) == 0x80

    def test_float_store_rounds_to_f32(self):
        emu = run_asm("""
        .data
        buf: .space 8
        .text
        main:
            la t0, buf
            fli ft0, 0.1
            fsw ft0, 0(t0)
            flw ft1, 0(t0)
        """)
        import struct
        f32 = struct.unpack("<f", struct.pack("<f", 0.1))[0]
        assert emu.state.f[1] == f32


class TestControlFlow:
    def test_taken_and_not_taken(self):
        emu = run_asm("""
            li t0, 5
            li t1, 5
            li t2, 0
            bne t0, t1, skip    # not taken
            li t2, 1
        skip:
            beq t0, t1, done    # taken
            li t2, 99
        done:
        """)
        assert reg(emu, 7) == 1

    def test_call_ret(self):
        emu = run_asm("""
            j main
        double:
            add a0, a0, a0
            ret
        main:
            li a0, 21
            call double
        """)
        assert reg(emu, 10) == 42

    def test_jalr_indirect(self):
        emu = run_asm("""
            la t0, target
            jalr ra, t0, 0
            li t1, 99           # skipped? no: return lands here
        target:
            li t2, 7
        """)
        assert reg(emu, 7) == 7


class TestSyscalls:
    def test_exit_code(self):
        emu = run_asm("li a0, 3")
        assert emu.exit_code == 3

    def test_print_int_and_char(self):
        emu = run_asm("""
            li a0, -12
            li a7, 1
            ecall
            li a0, 'Z'
            li a7, 3
            ecall
        """)
        assert emu.output == [-12, "Z"]

    def test_unknown_syscall_faults(self):
        src = "li a7, 1234\necall\n"
        emu = Emulator(assemble(src))
        with pytest.raises(EmulationFault):
            emu.run()

    def test_instret_counts(self):
        emu = run_asm("nop\nnop\nnop")
        assert emu.instret == 5  # 3 nops + li + ecall


class TestFaults:
    def test_pc_outside_text(self):
        emu = Emulator(assemble("jalr x0, x0, 0\n"))  # jump to 0
        with pytest.raises(EmulationFault):
            emu.step()
            emu.step()

    def test_step_returns_mem_addr_and_taken(self):
        emu = Emulator(assemble("""
        .data
        v: .word 1
        .text
        main:
            la t0, v
            lw t1, 0(t0)
            beqz x0, main
        """))
        emu.step()
        _, _, _, _, mem = emu.step()
        assert mem == emu.program.symbol("v")
        _, _, next_pc, taken, _ = emu.step()
        assert taken and next_pc == emu.program.entry
