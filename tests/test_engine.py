"""Tests for the experiment engine: job identity, result serialization,
the content-addressed store, the journal, grid expansion, and the
parallel executor's determinism and failure handling."""

import json
import os
import subprocess
import sys

import pytest

from repro import CoreConfig, SimulationResult
from repro.engine import (ExperimentEngine, ResultStore, RunJournal, SimJob,
                          code_fingerprint, expand_grid, parse_overrides,
                          resolve_workload, resolve_workloads)

#: Small fast job used throughout: ~16k instructions, ~0.3s.
JOB = SimJob(workload="gap.bfs", technique="conv", scale="tiny",
             max_instructions=8000)


@pytest.fixture(scope="module")
def live_result():
    return JOB.run()


def _stats_without_wall(result):
    data = result.to_dict()
    data.pop("wall_seconds")
    return data


class TestSimJob:
    def test_key_is_stable(self):
        assert JOB.key == SimJob(**JOB.to_dict()).key
        assert len(JOB.key) == 64

    def test_key_covers_every_input(self):
        for change in ({"workload": "gap.pr"}, {"technique": "nowp"},
                       {"scale": "small"}, {"seed": 7},
                       {"max_instructions": 9000},
                       {"base_config": "full"},
                       {"config_overrides": {"rob_size": 64}}):
            other = SimJob(**{**JOB.to_dict(), **change})
            assert other.key != JOB.key, change

    def test_key_covers_code_version(self, monkeypatch):
        base = JOB.key
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "vNext")
        assert JOB.key != base

    def test_fingerprint_pin(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "pinned")
        assert code_fingerprint() == "pinned"

    def test_config_resolution(self):
        job = SimJob(workload="gap.bfs", base_config="scaled",
                     config_overrides={"rob_size": 64})
        assert job.config() == CoreConfig.scaled(rob_size=64)
        full = SimJob(workload="gap.bfs", base_config="full")
        assert full.config() == CoreConfig()

    def test_bad_base_config_rejected(self):
        with pytest.raises(ValueError):
            SimJob(workload="gap.bfs", base_config="huge")

    def test_run_produces_result(self, live_result):
        assert live_result.instructions > 0
        assert live_result.technique == "conv"

    def test_key_partition_declared(self):
        import dataclasses as dc

        from repro.engine.job import (KEY_EXCLUDED_FIELDS, KEYED_FIELDS,
                                      _assert_key_partition)
        fields = {f.name for f in dc.fields(SimJob)}
        assert KEYED_FIELDS | KEY_EXCLUDED_FIELDS == fields
        assert not KEYED_FIELDS & KEY_EXCLUDED_FIELDS
        assert "trace_dir" in KEY_EXCLUDED_FIELDS
        _assert_key_partition()  # must not raise on the real class

    def test_key_partition_catches_new_field(self):
        # Adding a SimJob field without deciding keyed-vs-excluded must
        # blow up at import time, not silently alias cache entries.
        import dataclasses as dc

        from repro.engine.job import _assert_key_partition

        @dc.dataclass
        class Rogue(SimJob):
            extra_knob: int = 0

        with pytest.raises(RuntimeError, match="extra_knob"):
            _assert_key_partition(Rogue)


class TestResultSerialization:
    def test_round_trip_is_lossless(self, live_result):
        detached = SimulationResult.from_dict(live_result.to_dict())
        assert detached.to_dict() == live_result.to_dict()
        # Every derived metric the benches consume survives detachment.
        assert detached.ipc == live_result.ipc
        assert detached.branch_mpki == live_result.branch_mpki
        assert detached.cache_stats == live_result.cache_stats
        assert detached.stats.counters() == live_result.stats.counters()
        assert detached.config == live_result.config
        assert detached.output == live_result.output
        assert detached.bpu is None

    def test_json_round_trip(self, live_result):
        blob = json.dumps(live_result.to_dict(), sort_keys=True)
        detached = SimulationResult.from_dict(json.loads(blob))
        assert detached.to_dict() == live_result.to_dict()

    def test_schema_mismatch_rejected(self, live_result):
        data = live_result.to_dict()
        data["schema"] = -1
        with pytest.raises(ValueError):
            SimulationResult.from_dict(data)


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path, live_result):
        store = ResultStore(str(tmp_path / "cache"))
        assert store.get(JOB) is None and not store.contains(JOB)
        store.put(JOB, live_result)
        assert store.contains(JOB)
        assert store.get(JOB).to_dict() == live_result.to_dict()
        assert list(store.keys()) == [JOB.key]
        assert len(store) == 1

    def test_corrupt_blob_reads_as_miss(self, tmp_path, live_result):
        store = ResultStore(str(tmp_path))
        path = store.put(JOB, live_result)
        with open(path, "w") as fh:
            fh.write("{not json")
        assert store.get(JOB) is None

    def test_key_mismatch_reads_as_miss(self, tmp_path, live_result):
        store = ResultStore(str(tmp_path))
        path = store.put(JOB, live_result)
        blob = json.load(open(path))
        blob["key"] = "0" * 64
        json.dump(blob, open(path, "w"))
        assert store.get(JOB) is None

    def test_invalidate_and_clear(self, tmp_path, live_result):
        store = ResultStore(str(tmp_path))
        store.put(JOB, live_result)
        assert store.invalidate(JOB)
        assert not store.invalidate(JOB)
        store.put(JOB, live_result)
        assert store.clear() == 1
        assert len(store) == 0

    def test_env_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert ResultStore().root == str(tmp_path / "envcache")


class TestJournal:
    def test_record_and_read_back(self, tmp_path):
        journal = RunJournal(str(tmp_path / "j.jsonl"))
        entry = journal.record(key="k", job="gap.bfs/conv", status="ok",
                               cached=False, attempts=1, wall_seconds=2.0,
                               sim_wall_seconds=1.5, instructions=3000)
        assert entry["host_ips"] == 3000 / 1.5
        journal.record(key="k", job="gap.bfs/conv", status="hit",
                       cached=True, attempts=0, wall_seconds=0.0)
        with open(journal.path, "a") as fh:
            fh.write("corrupt line\n")
        entries = journal.entries()
        assert [e["status"] for e in entries] == ["ok", "hit"]
        assert entries[1]["host_ips"] is None

    def test_concurrent_multiprocess_appends_never_tear(self, tmp_path):
        """N processes hammering one journal concurrently must leave
        every line parseable — the single-write O_APPEND contract."""
        path = str(tmp_path / "j.jsonl")
        script = (
            "import sys\n"
            "from repro.engine.journal import append_jsonl_line\n"
            "path, worker = sys.argv[1], int(sys.argv[2])\n"
            "for i in range(200):\n"
            "    append_jsonl_line(path, {'worker': worker, 'i': i,\n"
            "                             'pad': 'x' * 200})\n"
        )
        procs = [subprocess.Popen([sys.executable, "-c", script,
                                   path, str(w)])
                 for w in range(4)]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        with open(path) as fh:
            lines = fh.readlines()
        assert len(lines) == 4 * 200
        seen = set()
        for line in lines:
            record = json.loads(line)     # raises if any line tore
            assert len(record["pad"]) == 200
            seen.add((record["worker"], record["i"]))
        assert len(seen) == 4 * 200       # nothing lost or duplicated


class TestJobKinds:
    def test_registered_kinds(self):
        from repro.engine import JOB_KINDS
        assert set(JOB_KINDS) >= {"sim", "fuzz"}

    def test_unknown_kind_rejected(self):
        from repro.engine import job_class
        with pytest.raises(ValueError, match="unknown job kind"):
            job_class("warp")

    def test_duplicate_registration_rejected(self):
        from repro.engine import register_job_kind
        with pytest.raises(ValueError, match="already registered"):
            register_job_kind("sim", "somewhere.else", "Other")

    def test_identical_reregistration_is_idempotent(self):
        from repro.engine import JOB_KINDS, register_job_kind
        module, attr = JOB_KINDS["sim"]
        register_job_kind("sim", module, attr)   # must not raise
        assert JOB_KINDS["sim"] == (module, attr)

    def test_transport_round_trip_preserves_key(self):
        from repro.engine import job_from_transport, job_to_transport
        transport = job_to_transport(JOB)
        assert transport["kind"] == "sim"
        back = job_from_transport(transport)
        assert type(back) is type(JOB)
        assert back.key == JOB.key

    def test_transport_round_trip_survives_json(self):
        from repro.engine import job_from_transport, job_to_transport
        wire = json.dumps(job_to_transport(JOB), sort_keys=True)
        assert job_from_transport(json.loads(wire)).key == JOB.key

    def test_fuzz_job_round_trips_too(self):
        from repro.engine import job_from_transport, job_to_transport
        from repro.fuzz import make_case
        from repro.fuzz.oracle import FuzzCaseJob
        job = FuzzCaseJob(make_case(1, 0))
        back = job_from_transport(job_to_transport(job))
        assert isinstance(back, FuzzCaseJob)
        assert back.key == job.key


class TestGrid:
    def test_short_names_resolve(self):
        assert resolve_workload("bfs") == "gap.bfs"
        assert resolve_workload("xz_like") == "spec.int.xz_like"
        assert resolve_workload("saxpy_like") == "spec.fp.saxpy_like"
        assert resolve_workload("gap.pr") == "gap.pr"
        with pytest.raises(KeyError):
            resolve_workload("nothere")

    def test_groups_and_dedupe(self):
        names = resolve_workloads(["bfs", "gap", "bfs"])
        assert names[0] == "gap.bfs"
        assert sorted(names) == sorted(set(names))
        assert len(names) == 6

    def test_parse_overrides(self):
        assert parse_overrides("rob_size=128, mem_latency=90") == \
            {"rob_size": 128, "mem_latency": 90}
        assert parse_overrides("l2_prefetcher=none") == \
            {"l2_prefetcher": None}
        assert parse_overrides("predictor_kind=tage") == \
            {"predictor_kind": "tage"}
        with pytest.raises(ValueError):
            parse_overrides("rob_size")

    def test_expand_grid_shape(self):
        jobs = expand_grid(["bfs", "pr"], ["nowp", "conv"],
                           config_points=[{}, {"rob_size": 64}],
                           scale="tiny", max_instructions=1000)
        assert len(jobs) == 2 * 2 * 2
        assert [j.label for j in jobs[:2]] == ["gap.bfs/nowp",
                                               "gap.bfs/conv"]
        assert len({j.key for j in jobs}) == len(jobs)

    def test_unknown_technique_rejected(self):
        with pytest.raises(KeyError):
            expand_grid(["bfs"], ["magic"])


class TestEngineSerial:
    def test_miss_then_hit(self, tmp_path):
        engine = ExperimentEngine(store=ResultStore(str(tmp_path)), jobs=1)
        first = engine.run_one(JOB)
        assert first.status == "ok" and first.attempts == 1
        second = engine.run_one(JOB)
        assert second.status == "hit" and second.cached
        assert second.result.to_dict() == first.result.to_dict()
        statuses = [e["status"] for e in engine.journal.entries()]
        assert statuses == ["ok", "hit"]

    def test_fresh_skips_read_but_writes(self, tmp_path):
        engine = ExperimentEngine(store=ResultStore(str(tmp_path)), jobs=1)
        engine.run_one(JOB)
        refreshed = engine.run_one(JOB, fresh=True)
        assert refreshed.status == "ok"
        assert engine.store.contains(JOB)

    def test_storeless_engine_runs(self):
        engine = ExperimentEngine(jobs=1)
        outcome = engine.run_one(JOB)
        assert outcome.ok and outcome.status == "ok"

    def test_failure_is_an_outcome_not_an_exception(self, tmp_path):
        bad = SimJob(workload="gap.nothere", technique="conv")
        engine = ExperimentEngine(store=ResultStore(str(tmp_path)),
                                  jobs=1, retries=1)
        outcome = engine.run_one(bad)
        assert outcome.status == "failed" and not outcome.ok
        assert outcome.attempts == 2           # bounded retry
        assert "nothere" in outcome.error
        entry = engine.journal.entries()[-1]
        assert entry["status"] == "failed" and entry["error"]

    def test_summarize(self, tmp_path):
        engine = ExperimentEngine(store=ResultStore(str(tmp_path)),
                                  jobs=1, retries=0)
        first = engine.run_one(JOB)
        outcomes = engine.run([JOB, SimJob(workload="gap.nothere")])
        summary = ExperimentEngine.summarize(outcomes)
        assert summary == {"total": 2, "hits": 1, "simulated": 0,
                           "failed": 1, "sim_wall_seconds": 0}
        assert outcomes[0].result.to_dict() == first.result.to_dict()


GRID = [SimJob(workload="gap.bfs", technique=t, scale="tiny",
               max_instructions=6000) for t in ("nowp", "conv")] + \
       [SimJob(workload="gap.pr", technique=t, scale="tiny",
               max_instructions=6000) for t in ("nowp", "conv")]


class TestEngineParallel:
    def test_pool_matches_serial_bit_for_bit(self):
        """The engine's core invariant: a job simulated in a worker
        process yields the exact stats of an in-process run (everything
        except wall clock), so cache keys are process-agnostic."""
        serial = ExperimentEngine(jobs=1).run(GRID)
        parallel = ExperimentEngine(jobs=4).run(GRID)
        assert [o.status for o in parallel] == ["ok"] * len(GRID)
        for s, p in zip(serial, parallel):
            assert _stats_without_wall(s.result) == \
                _stats_without_wall(p.result)

    def test_pool_populates_store_for_serial_hits(self, tmp_path):
        store = ResultStore(str(tmp_path))
        parallel = ExperimentEngine(store=store, jobs=4).run(GRID)
        assert all(o.status == "ok" for o in parallel)
        serial = ExperimentEngine(store=store, jobs=1).run(GRID)
        assert [o.status for o in serial] == ["hit"] * len(GRID)

    def test_pool_failure_outcomes(self, tmp_path):
        jobs = GRID[:1] + [SimJob(workload="gap.nothere", scale="tiny")]
        outcomes = ExperimentEngine(store=ResultStore(str(tmp_path)),
                                    jobs=2, retries=0).run(jobs)
        assert outcomes[0].status == "ok"
        assert outcomes[1].status == "failed"
        assert "nothere" in outcomes[1].error

    def test_timeout_fails_job(self):
        engine = ExperimentEngine(jobs=2, timeout=0.01, retries=0)
        outcomes = engine.run(GRID[:2])
        assert all(o.status == "failed" for o in outcomes)
        assert all("timeout" in o.error for o in outcomes)


class TestCrossInterpreterDeterminism:
    def test_fresh_interpreter_reproduces_stats(self, tmp_path,
                                                live_result):
        """Guards the cache across CLI invocations: a brand-new
        interpreter (different PYTHONHASHSEED) must reproduce the stored
        stats exactly, or content-addressed reuse would be unsound."""
        script = (
            "import json, sys\n"
            "from repro.engine import SimJob\n"
            "job = SimJob.from_dict(json.loads(sys.argv[1]))\n"
            "data = job.run().to_dict()\n"
            "data.pop('wall_seconds')\n"
            "print(json.dumps(data, sort_keys=True))\n")
        env = dict(os.environ, PYTHONHASHSEED="271828",
                   PYTHONPATH=os.pathsep.join(
                       [os.path.join(os.path.dirname(__file__), os.pardir,
                                     "src")]
                       + os.environ.get("PYTHONPATH", "").split(os.pathsep)))
        proc = subprocess.run(
            [sys.executable, "-c", script, json.dumps(JOB.to_dict())],
            capture_output=True, text=True, env=env, check=True)
        assert json.loads(proc.stdout) == json.loads(
            json.dumps(_stats_without_wall(live_result)))


class TestCompareWorkload:
    def test_matches_in_process_comparison(self, tmp_path):
        from repro import compare_workload
        engine = ExperimentEngine(store=ResultStore(str(tmp_path)), jobs=2)
        cmp = compare_workload("bfs", scale="tiny", max_instructions=6000,
                               engine=engine)
        assert set(cmp.results) == {"nowp", "instrec", "conv", "wpemul"}
        again = compare_workload("bfs", scale="tiny",
                                 max_instructions=6000, engine=engine)
        assert {t: r.ipc for t, r in again.results.items()} == \
            {t: r.ipc for t, r in cmp.results.items()}

    def test_failure_raises(self, tmp_path):
        from repro import compare_workload
        engine = ExperimentEngine(store=ResultStore(str(tmp_path)),
                                  jobs=1, retries=0)
        with pytest.raises(KeyError):
            compare_workload("gap.nothere", engine=engine)
