"""The simulator's timing self-validation suite must pass on both the
full-scale and the downscaled configurations."""

import pytest

from repro import CoreConfig
from repro.validation import ALL_CHECKS, CheckResult, validate


@pytest.mark.parametrize("check", ALL_CHECKS,
                         ids=lambda c: c.__name__)
def test_full_scale_config(check):
    result = check(CoreConfig())
    assert result.passed, repr(result)


@pytest.mark.parametrize(
    "check",
    [c for c in ALL_CHECKS
     if c.__name__ != "check_independent_ipc"],
    ids=lambda c: c.__name__)
def test_scaled_config(check):
    # The downscaled config has tiny caches, so the pure-ALU throughput
    # check (which assumes code streams from a warm L1I) is the only one
    # excluded from the cross-config sweep.
    result = check(CoreConfig.scaled())
    assert result.passed, repr(result)


def test_validate_returns_all_checks():
    results = validate()
    assert len(results) == len(ALL_CHECKS)
    assert all(isinstance(r, CheckResult) for r in results)


def test_check_result_repr():
    good = CheckResult("x", 1.0, 0.5, 1.5)
    bad = CheckResult("x", 9.0, 0.5, 1.5)
    assert good.passed and "[ok]" in repr(good)
    assert not bad.passed and "FAIL" in repr(bad)
