"""Functional-correctness tests for every workload: run the compiled
program on the emulator and compare against the Python reference."""

import pytest

from repro.functional.emulator import Emulator
from repro.workloads import (build_workload, gap_names, spec_fp_names,
                             spec_int_names, workload_names)

ALL = workload_names()


def check_workload(name):
    wl = build_workload(name, scale="tiny")
    emu = Emulator(wl.program)
    emu.run(max_instructions=5_000_000)
    assert emu.halted, f"{name} did not finish"
    assert wl.expected_output is not None
    assert len(emu.output) == len(wl.expected_output)
    tolerance = wl.meta.get("float_tolerance", 1e-6)
    for got, want in zip(emu.output, wl.expected_output):
        if isinstance(want, float):
            assert got == pytest.approx(want, rel=tolerance, abs=1e-9), name
        else:
            assert got == want, name
    return wl, emu


class TestRegistry:
    def test_suite_partition(self):
        assert len(gap_names()) == 6
        assert len(spec_int_names()) == 10
        assert len(spec_fp_names()) == 8
        assert set(ALL) == set(gap_names()) | set(spec_int_names()) \
            | set(spec_fp_names())

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_workload("gap.nope")

    def test_workload_metadata(self):
        wl = build_workload("gap.bfs", scale="tiny")
        assert wl.suite == "gap"
        assert wl.meta["scale"] == "tiny"
        assert wl.description


@pytest.mark.parametrize("name", gap_names())
def test_gap_kernel_correct(name):
    check_workload(name)


@pytest.mark.parametrize("name", spec_int_names())
def test_spec_int_kernel_correct(name):
    check_workload(name)


@pytest.mark.parametrize("name", spec_fp_names())
def test_spec_fp_kernel_correct(name):
    check_workload(name)


class TestWorkloadShape:
    def test_gap_kernels_have_branch_misses(self):
        """The GAP suite must stress branch prediction (the paper's
        premise); pr is the designed exception."""
        from repro import CoreConfig, Simulator
        for name in ("gap.bfs", "gap.sssp"):
            wl = build_workload(name, scale="tiny", check=False)
            result = Simulator(wl.program, config=CoreConfig.scaled(),
                               technique="nowp", name=name).run()
            assert result.branch_mpki > 3, name

    def test_fp_kernels_have_few_branch_misses(self):
        from repro import CoreConfig, Simulator
        for name in ("spec.fp.saxpy_like", "spec.fp.stencil_like"):
            wl = build_workload(name, scale="tiny", check=False)
            result = Simulator(wl.program, config=CoreConfig.scaled(),
                               technique="nowp", name=name).run()
            assert result.branch_mpki < 3, name

    def test_seed_changes_data(self):
        a = build_workload("gap.bfs", scale="tiny", seed=1, check=False)
        b = build_workload("gap.bfs", scale="tiny", seed=2, check=False)
        assert a.program.data != b.program.data

    def test_check_false_skips_reference(self):
        wl = build_workload("gap.tc", scale="tiny", check=False)
        assert wl.expected_output is None

    def test_tc_reference_matches_brute_force(self):
        # Regression for the SC001 rewrite of reference(): the
        # list-iteration form must still count each triangle once.
        from itertools import combinations

        from repro.workloads import graphs
        from repro.workloads.gap.tc import reference

        graph = graphs.power_law(40, 4, seed=5, symmetric=True)
        adjacency = [set(map(int, graph.neighbors(u)))
                     for u in range(graph.num_nodes)]
        brute = sum(1 for u, v, w in combinations(range(graph.num_nodes), 3)
                    if v in adjacency[u] and w in adjacency[u]
                    and w in adjacency[v])
        assert reference(graph) == brute
