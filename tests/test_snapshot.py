"""Tests for SimSnapshot capture/restore and the warm-state images.

The checkpointed sampler's correctness rests on two properties pinned
here: a snapshot serializes losslessly (``to_dict``/``from_dict``/
``digest`` round-trip), and restoring one into *fresh* components
reproduces the captured state exactly — architectural memory digest,
predictor tables, cache/TLB/prefetcher contents and the code cache.
"""

import pytest

from repro.branch.predictors import BranchPredictorUnit
from repro.cache.hierarchy import CacheHierarchy
from repro.core.config import CoreConfig
from repro.frontend.code_cache import CodeCache
from repro.functional.frontend import FunctionalFrontend
from repro.functional.memory import Memory
from repro.minicc import compile_to_program
from repro.simulator.snapshot import SimSnapshot

SOURCE = """
int table[512];
void main() {
    int seed = 9;
    for (int i = 0; i < 512; i += 1) {
        seed = seed * 1103515245 + 12345;
        table[i] = (seed >> 16) & 511;
    }
    int acc = 0;
    for (int i = 0; i < 512; i += 1) {
        if (table[table[i]] > 256) {
            acc += 1;
        }
    }
    print_int(acc);
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_to_program(SOURCE)


def _make_components(cfg):
    hierarchy = CacheHierarchy.from_config(cfg)
    bpu = BranchPredictorUnit(
        kind=cfg.predictor_kind, table_bits=cfg.predictor_table_bits,
        history_bits=cfg.predictor_history_bits, ras_depth=cfg.ras_depth,
        indirect_bits=cfg.indirect_bits)
    return hierarchy, bpu, CodeCache()


def _warm_snapshot(program, count=4000):
    """Run the functional pass far enough to have non-trivial state in
    every component, then capture."""
    cfg = CoreConfig.scaled()
    frontend = FunctionalFrontend(program, Memory())
    hierarchy, bpu, code_cache = _make_components(cfg)
    line_shift = cfg.line_size.bit_length() - 1
    cur_line = -1
    for di in frontend.produce_batch(count):
        instr = di.instr
        code_cache.insert(instr)
        line = di.pc >> line_shift
        if line != cur_line:
            cur_line = line
            hierarchy.access_instr(di.pc)
        if instr.is_mem:
            hierarchy.access_data(di.mem_addr, instr.is_store, pc=di.pc)
        if instr.is_control:
            bpu.predict_and_update(instr, di.taken, di.next_pc)
    snap = SimSnapshot.capture(0, frontend, hierarchy, bpu, code_cache)
    return cfg, frontend, (hierarchy, bpu, code_cache), snap


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self, program):
        _, _, _, snap = _warm_snapshot(program)
        clone = SimSnapshot.from_dict(snap.to_dict())
        assert clone.to_dict() == snap.to_dict()
        assert clone.digest() == snap.digest()

    def test_schema_rejection(self, program):
        _, _, _, snap = _warm_snapshot(program)
        with pytest.raises(ValueError):
            SimSnapshot.from_dict(dict(snap.to_dict(), schema=99))

    def test_digest_is_state_sensitive(self, program):
        _, _, _, snap = _warm_snapshot(program, count=2000)
        _, _, _, later = _warm_snapshot(program, count=3000)
        assert snap.digest() != later.digest()


class TestRestore:
    def test_restore_reproduces_memory_exactly(self, program):
        _, source, _, snap = _warm_snapshot(program)
        fresh = FunctionalFrontend(program, Memory())
        snap.restore(fresh)
        emu = fresh.emulator
        assert emu.memory.digest() == source.emulator.memory.digest()
        assert emu.state.pc == source.emulator.state.pc
        assert list(emu.state.x) == list(source.emulator.state.x)
        assert emu.instret == source.emulator.instret
        assert fresh.instructions_produced == source.instructions_produced

    def test_restore_reproduces_warm_images_exactly(self, program):
        cfg, _, (hierarchy, bpu, code_cache), snap = _warm_snapshot(program)
        fresh_h, fresh_b, fresh_c = _make_components(cfg)
        fresh_fe = FunctionalFrontend(program, Memory())
        snap.restore(fresh_fe, hierarchy=fresh_h, bpu=fresh_b,
                     code_cache=fresh_c)
        assert fresh_h.state_dict() == hierarchy.state_dict()
        assert fresh_b.state_dict() == bpu.state_dict()
        assert fresh_c.state_dict() == code_cache.state_dict()

    def test_restored_frontend_continues_identically(self, program):
        """The decisive property: a restored frontend produces the exact
        same downstream instruction stream as the original."""
        _, source, _, snap = _warm_snapshot(program)
        fresh = FunctionalFrontend(program, Memory())
        snap.restore(fresh)
        for a, b in zip(source.produce_batch(500), fresh.produce_batch(500)):
            assert (a.seq, a.pc, a.next_pc, a.taken, a.mem_addr) == \
                   (b.seq, b.pc, b.next_pc, b.taken, b.mem_addr)

    def test_memory_digest_mismatch_raises(self, program):
        _, _, _, snap = _warm_snapshot(program)
        corrupt = SimSnapshot.from_dict(snap.to_dict())
        corrupt.memory_digest = "0" * 64
        fresh = FunctionalFrontend(program, Memory())
        with pytest.raises(ValueError, match="digest mismatch"):
            corrupt.restore(fresh)

    def test_wpemul_frontend_predictor_restored_in_lockstep(self, program):
        """A frontend built with a predictor copy (wpemul) gets it
        restored from the same image as the timing BPU."""
        cfg, _, _, snap = _warm_snapshot(program)
        _, copy_bpu, _ = _make_components(cfg)
        fresh = FunctionalFrontend(program, Memory(), predictor=copy_bpu,
                                   emulate_wrong_path=True)
        _, timing_bpu, _ = _make_components(cfg)
        snap.restore(fresh, bpu=timing_bpu)
        assert copy_bpu.state_dict() == timing_bpu.state_dict()
        assert copy_bpu.state_dict() == snap.bpu
