"""Tests for the differential fuzzing subsystem (:mod:`repro.fuzz`).

The acceptance spine: generation is deterministic and produces valid,
halting programs; the oracle battery passes on the current tree; the
fuzz loop's findings digest is reproducible (serial == parallel); and
a deliberately injected convergence address-copy bug is *found* by the
``conv-addr`` oracle and *shrunk* to a minimal repro that replays from
the corpus byte-identically.
"""

import json
import random

import pytest

import repro.wrongpath.convergence as conv_mod
from repro.core.config import CoreConfig
from repro.engine.job import job_class
from repro.functional.emulator import Emulator
from repro.fuzz import (CaseOutcome, FuzzCase, FuzzCaseJob, fuzz,
                        load_case, make_case, replay_path, run_case,
                        save_case)
from repro.fuzz.confgen import AXES, generate_config_overrides
from repro.fuzz.corpus import case_path
from repro.fuzz.runner import case_seed


def instruction_count(source: str) -> int:
    """Instructions in an assembly source (labels/directives/data
    excluded)."""
    count = 0
    for line in source.splitlines():
        text = line.split("#", 1)[0].strip()
        if not text or text.endswith(":") or text.startswith("."):
            continue
        if text.split()[0] == ".word" or text[0].isdigit():
            continue
        count += 1
    return count


class TestGenerators:
    def test_make_case_deterministic(self):
        for index in range(6):
            a = make_case(3, index)
            b = make_case(3, index)
            assert a.to_dict() == b.to_dict()

    def test_case_seed_decorrelates(self):
        seeds = {case_seed(s, i) for s in range(4) for i in range(32)}
        assert len(seeds) == 4 * 32

    def test_frontend_alternation_and_selection(self):
        assert make_case(0, 0).frontend == "isa"
        assert make_case(0, 1).frontend == "minicc"
        assert make_case(0, 2, frontend="minicc").frontend == "minicc"
        assert make_case(0, 3, frontend="isa").frontend == "isa"
        with pytest.raises(ValueError):
            make_case(0, 0, frontend="c++")

    @pytest.mark.parametrize("frontend", ["isa", "minicc"])
    def test_generated_programs_build_and_halt(self, frontend):
        for index in range(5):
            case = make_case(11, index, frontend=frontend)
            emulator = Emulator(case.build())
            emulator.run(500_000)
            # (minicc exit codes carry main's return value; only the
            # isa generator pins exit 0.)
            assert emulator.halted, case.case_id
            if frontend == "isa":
                assert emulator.exit_code == 0, case.case_id

    def test_config_overrides_always_legal(self):
        rng = random.Random(5)
        for _ in range(50):
            overrides = generate_config_overrides(rng)
            assert set(overrides) <= set(AXES)
            CoreConfig.scaled(**overrides).validate()


class TestOracle:
    def test_clean_on_generated_cases(self):
        for index in range(4):
            case = make_case(42, index, max_instructions=3000)
            outcome = run_case(case)
            assert outcome.ok, (case.case_id, outcome.findings)
            assert "build" in outcome.checks
            assert "crash" in outcome.checks
            assert "roundtrip" in outcome.checks

    def test_outcome_roundtrip(self):
        outcome = run_case(make_case(42, 0, max_instructions=2000))
        blob = json.dumps(outcome.to_dict(), sort_keys=True)
        rebuilt = CaseOutcome.from_dict(json.loads(blob))
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == blob

    def test_build_oracle_fires_on_bad_source(self):
        case = FuzzCase(case_id="bad-asm", frontend="isa",
                        source="_start:\n    frobnicate x0, x0\n")
        outcome = run_case(case)
        assert outcome.oracles == ["build"]

    def test_crash_oracle_fires_on_bad_syscall(self):
        case = FuzzCase(case_id="bad-syscall", frontend="isa",
                        source="_start:\n    li a7, 999\n    ecall\n")
        outcome = run_case(case)
        assert "crash" in outcome.oracles

    def test_perfect_predictor_metamorphic_check_runs(self):
        case = make_case(7, 0, frontend="isa", max_instructions=3000)
        case = case.replace(
            config_overrides={"predictor_kind": "perfect"})
        outcome = run_case(case)
        assert outcome.ok, outcome.findings
        assert "perfect-cycles" in outcome.checks

    def test_conv_addr_check_runs_on_isa_cases(self):
        # Some early seed-2024 index fires mispredict episodes; the
        # conv-addr oracle must have been applied (and passed).
        ran = []
        for index in range(4):
            case = make_case(2024, index, frontend="isa",
                             max_instructions=3000)
            outcome = run_case(case)
            assert outcome.ok, (case.case_id, outcome.findings)
            ran.extend(outcome.checks)
        assert "conv-addr" in ran


class TestEngineAdapter:
    def test_fuzz_kind_registered(self):
        assert job_class("fuzz") is FuzzCaseJob
        with pytest.raises(ValueError):
            job_class("nonsense")

    def test_job_roundtrip_and_identity(self):
        case = make_case(1, 0)
        job = FuzzCaseJob(case)
        assert job.kind == "fuzz"
        assert job.label == case.case_id
        rebuilt = FuzzCaseJob.from_dict(job.to_dict())
        assert rebuilt.case.to_dict() == case.to_dict()
        assert rebuilt.key == job.key


class TestCorpus:
    def test_save_load_byte_identical(self, tmp_path):
        case = make_case(9, 2)
        findings = [{"oracle": "arch", "technique": "conv",
                     "detail": "demo"}]
        path = save_case(str(tmp_path), case, findings)
        assert path == case_path(str(tmp_path), case.case_id)
        loaded, loaded_findings = load_case(path)
        assert loaded.to_dict() == case.to_dict()
        assert loaded_findings == findings
        first = open(path, "rb").read()
        save_case(str(tmp_path), loaded, loaded_findings)
        assert open(path, "rb").read() == first

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": 99, "case": {},
                                    "findings": []}))
        with pytest.raises(ValueError):
            load_case(str(path))


class TestFuzzLoop:
    def test_deterministic_and_parallel_digest(self, tmp_path):
        serial = fuzz(seed=5, budget=6, jobs=1, max_instructions=3000,
                      corpus_dir=str(tmp_path / "a"))
        again = fuzz(seed=5, budget=6, jobs=1, max_instructions=3000,
                     corpus_dir=str(tmp_path / "b"))
        parallel = fuzz(seed=5, budget=6, jobs=2,
                        max_instructions=3000,
                        corpus_dir=str(tmp_path / "c"))
        assert serial.ok, serial.failures
        assert serial.findings_digest() == again.findings_digest()
        assert serial.findings_digest() == parallel.findings_digest()
        assert serial.cases == 6 and not serial.stopped_early

    def test_progress_callback(self, tmp_path):
        seen = []
        report = fuzz(seed=5, budget=3, max_instructions=2000,
                      corpus_dir=str(tmp_path),
                      progress=lambda *a: seen.append(a))
        assert report.ok
        assert seen[-1] == (3, 3, 0)


def _install_conv_address_bug(monkeypatch):
    """Inject an off-by-4 into convergence address recovery: every
    address conv copies onto the reconstructed wrong path is bumped by
    one word.  The conv-addr oracle must catch this."""
    real = conv_mod._copy_addresses

    def buggy(aligned, dirty):
        pairs = list(aligned)
        real(iter(pairs), dirty)
        for wp_item, _cp_di in pairs:
            if wp_item.mem_addr is not None:
                wp_item.mem_addr += 4

    monkeypatch.setattr(conv_mod, "_copy_addresses", buggy)
    return real


class TestInjectedBug:
    def test_conv_addr_bug_found_shrunk_and_replayable(
            self, tmp_path, monkeypatch):
        real = _install_conv_address_bug(monkeypatch)
        report = fuzz(seed=2024, budget=1, frontend="isa",
                      max_instructions=3000,
                      corpus_dir=str(tmp_path))
        assert not report.ok
        failure = report.failures[0]
        assert failure["oracles"] == ["conv-addr"]

        # Shrunk to a minimal repro: a handful of instructions, no
        # config overrides left.
        shrunk = failure["shrunk"]
        assert instruction_count(shrunk["source"]) <= 12
        assert shrunk["config_overrides"] == {}

        # The corpus file replays the finding while the bug is in...
        outcome = replay_path(failure["corpus_path"])
        assert "conv-addr" in outcome.oracles

        # ...and is clean once the bug is fixed.
        monkeypatch.setattr(conv_mod, "_copy_addresses", real)
        fixed = replay_path(failure["corpus_path"])
        assert fixed.ok, fixed.findings


@pytest.mark.slow
class TestDeepFuzz:
    def test_deep_run_is_clean(self, tmp_path):
        report = fuzz(seed=0, budget=150,
                      corpus_dir=str(tmp_path))
        assert report.ok, report.failures

    def test_deep_isa_run_is_clean(self, tmp_path):
        report = fuzz(seed=99, budget=100, frontend="isa",
                      corpus_dir=str(tmp_path))
        assert report.ok, report.failures
