"""End-to-end determinism goldens.

The hot-path optimizations (batch pipeline, memoized code-cache blocks,
flat instruction handlers, inlined port issue) are only admissible if
they are *bit-identical* rewrites: every statistic the simulator reports
must match what the unoptimized reference produced.  This test pins the
full :meth:`SimulationResult.to_dict` payload — cycles, IPC, cache and
predictor stats, wrong-path accounting — for two representative
workloads under all four techniques against committed SHA-256 digests.

If an intentional modeling change alters these numbers, regenerate the
digests (see ``tests/data/determinism_golden.json``) in the same commit
and say why in the commit message; an *unintentional* mismatch here
means a performance change broke simulation semantics.
"""

import hashlib
import json
import os

import pytest

from repro.simulator.simulation import ALL_TECHNIQUES, Simulator
from repro.workloads import build_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "determinism_golden.json")
WORKLOADS = ("gap.bfs", "spec.int.xz_like")
MAX_INSTRUCTIONS = 30000


def _digest(result_dict: dict) -> str:
    result_dict = dict(result_dict)
    result_dict.pop("wall_seconds")  # host timing is not deterministic
    blob = json.dumps(result_dict, sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@pytest.fixture(scope="module")
def goldens():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def programs():
    return {name: build_workload(name, scale="small", check=False)
            for name in WORKLOADS}


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("technique", ALL_TECHNIQUES)
def test_simulation_matches_golden_digest(workload, technique, goldens,
                                          programs):
    key = f"{workload}/{technique}"
    assert key in goldens, f"no committed digest for {key}"
    wl = programs[workload]
    result = Simulator(wl.program, technique=technique,
                       max_instructions=MAX_INSTRUCTIONS,
                       name=wl.name).run()
    assert _digest(result.to_dict()) == goldens[key], (
        f"{key}: simulation output diverged from the committed golden — "
        "a hot-path change altered observable semantics")


def test_golden_file_covers_all_configs(goldens):
    expected = {f"{w}/{t}" for w in WORKLOADS for t in ALL_TECHNIQUES}
    assert set(goldens) == expected
