"""Unit tests for the Program container."""

import pytest

from repro.isa.instructions import Instruction
from repro.isa.program import Program, ProgramError, TEXT_BASE


def make_program(n=4, **kwargs):
    instrs = [Instruction("add", rd=1, rs1=2, rs2=3) for _ in range(n)]
    return Program(instrs, **kwargs)


class TestLayout:
    def test_pcs_assigned_densely(self):
        program = make_program(3)
        pcs = [ins.pc for ins in program.instructions]
        assert pcs == [TEXT_BASE, TEXT_BASE + 4, TEXT_BASE + 8]
        assert program.text_end == TEXT_BASE + 12

    def test_custom_text_base(self):
        program = make_program(2, text_base=0x8000)
        assert program.instructions[0].pc == 0x8000
        assert program.entry == 0x8000

    def test_misaligned_text_base_rejected(self):
        with pytest.raises(ProgramError):
            make_program(1, text_base=0x1002)

    def test_instruction_at(self):
        program = make_program(2)
        assert program.instruction_at(TEXT_BASE + 4) is \
            program.instructions[1]
        assert program.instruction_at(TEXT_BASE + 2) is None
        assert program.instruction_at(program.text_end) is None

    def test_len(self):
        assert len(make_program(7)) == 7


class TestSymbolsAndData:
    def test_symbol_lookup(self):
        program = make_program(1, symbols={"foo": 0x2000})
        assert program.symbol("foo") == 0x2000
        with pytest.raises(ProgramError):
            program.symbol("bar")

    def test_add_data(self):
        program = make_program(1)
        program.add_data(0x100000, [1, 2, 3])
        assert (0x100000, [1, 2, 3]) in program.data

    def test_entry_defaults_to_text_base(self):
        assert make_program(1).entry == TEXT_BASE

    def test_explicit_entry(self):
        program = make_program(3, entry=TEXT_BASE + 8)
        assert program.entry == TEXT_BASE + 8

    def test_repr_mentions_counts(self):
        text = repr(make_program(5, symbols={"a": 1}))
        assert "5 instrs" in text and "1 symbols" in text
