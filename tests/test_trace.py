"""Tests for the trace-based functional frontend."""

import pytest

from repro import CoreConfig, simulate
from repro.functional.trace import (InstructionTrace, TraceError,
                                    TraceFrontend, simulate_trace)
from repro.minicc import compile_to_program

SOURCE = """
int data[512];
void main() {
    int acc = 0;
    for (int i = 0; i < 512; i += 1) {
        data[i] = (i * 37) % 97;
    }
    for (int i = 0; i < 512; i += 1) {
        if (data[i] % 5 == 0) {
            acc += data[i];
        }
    }
    print_int(acc);
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_to_program(SOURCE)


@pytest.fixture(scope="module")
def trace(program):
    return InstructionTrace.record(program)


class TestRecording:
    def test_records_full_run(self, trace):
        assert len(trace) > 5000
        # The last record must be the exit ecall.
        last_pc = trace.records[-1][0]
        assert trace.program.instruction_at(last_pc).is_syscall

    def test_records_memory_addresses(self, trace):
        mem_records = [r for r in trace.records if r[3] is not None]
        assert len(mem_records) > 500

    def test_nonterminating_program_rejected(self):
        looping = compile_to_program(
            "void main() { while (1) { } }")
        with pytest.raises(TraceError):
            InstructionTrace.record(looping, max_instructions=1000)


class TestReplay:
    def test_replay_matches_live_stream(self, program, trace):
        from repro.functional.frontend import FunctionalFrontend
        live = FunctionalFrontend(program)
        replay = TraceFrontend(trace)
        for _ in range(len(trace)):
            a = live.produce()
            b = replay.produce()
            assert (a.pc, a.next_pc, a.taken, a.mem_addr) == \
                (b.pc, b.next_pc, b.taken, b.mem_addr)
        assert replay.produce() is None

    def test_rewind(self, trace):
        frontend = TraceFrontend(trace)
        first = frontend.produce()
        frontend.produce()
        frontend.rewind()
        again = frontend.produce()
        assert again.pc == first.pc and again.seq == 0

    def test_mismatched_program_detected(self, trace):
        other = compile_to_program("void main() { print_int(1); }")
        bad = InstructionTrace(other, trace.records)
        frontend = TraceFrontend(bad)
        with pytest.raises(TraceError):
            for _ in range(len(bad)):
                frontend.produce()


class TestSerialization:
    def test_save_load_roundtrip(self, trace, tmp_path):
        path = str(tmp_path / "kernel.trace")
        trace.save(path)
        loaded = InstructionTrace.load(path, trace.program)
        assert loaded.records == trace.records

    def test_bad_magic(self, tmp_path, program):
        path = tmp_path / "junk.trace"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(TraceError):
            InstructionTrace.load(str(path), program)

    def test_truncated_file(self, trace, tmp_path, program):
        path = tmp_path / "cut.trace"
        full = tmp_path / "full.trace"
        trace.save(str(full))
        path.write_bytes(full.read_bytes()[:-7])
        with pytest.raises(TraceError):
            InstructionTrace.load(str(path), program)


class TestTraceSimulation:
    def test_trace_timing_matches_live(self, program, trace):
        """A trace replay must produce exactly the live frontend's timing
        for the techniques it supports."""
        config = CoreConfig.scaled()
        for technique in ("nowp", "instrec", "conv"):
            live = simulate(program, technique=technique, config=config)
            traced = simulate_trace(trace, technique=technique,
                                    config=config)
            assert traced.cycles == live.cycles, technique
            assert traced.stats.wp_fetched == live.stats.wp_fetched

    def test_wpemul_rejected_on_trace(self, trace):
        """The paper's flexibility caveat: 'a trace frontend cannot
        implement this, because the trace only contains correct-path
        instructions'."""
        with pytest.raises(TraceError, match="correct-path"):
            simulate_trace(trace, technique="wpemul",
                           config=CoreConfig.scaled())

    def test_unknown_technique(self, trace):
        with pytest.raises(ValueError):
            simulate_trace(trace, technique="psychic")

    def test_max_instructions(self, trace):
        result = simulate_trace(trace, technique="nowp",
                                config=CoreConfig.scaled(),
                                max_instructions=100)
        assert result.instructions == 100
