"""Unit tests for sharing an LLC/memory across hierarchies (the multicore
building block)."""

from repro.cache.cache import Cache, MainMemory
from repro.cache.hierarchy import CacheHierarchy


def make_pair():
    memory = MainMemory(latency=100)
    llc = Cache("LLC", 16 * 1024, 8, 64, 30, memory)
    kwargs = dict(l1d_size=1024, l1d_assoc=2, l1d_latency=2,
                  l1i_size=1024, l1i_assoc=2, l1i_latency=1,
                  l2_size=4096, l2_assoc=4, l2_latency=8,
                  dtlb_entries=8)
    a = CacheHierarchy(shared_llc=llc, shared_memory=memory, **kwargs)
    b = CacheHierarchy(shared_llc=llc, shared_memory=memory, **kwargs)
    return a, b, llc, memory


class TestSharedLLC:
    def test_same_llc_object(self):
        a, b, llc, memory = make_pair()
        assert a.llc is llc and b.llc is llc
        assert a.memory is memory and b.memory is memory

    def test_private_l1_l2(self):
        a, b, _, _ = make_pair()
        assert a.l1d is not b.l1d
        assert a.l2 is not b.l2

    def test_cross_hierarchy_llc_warming(self):
        """Core A's fill leaves the line in the shared LLC; core B then
        misses only down to the LLC, not to memory."""
        a, b, llc, memory = make_pair()
        addr = 0x123400
        a.access_data(addr)
        accesses_before = memory.stats.accesses
        latency = b.access_data(addr)
        assert memory.stats.accesses == accesses_before  # LLC hit
        assert latency < 100  # no memory round trip

    def test_cross_hierarchy_eviction_interference(self):
        """Core B thrashing the shared LLC evicts core A's line."""
        a, b, llc, _ = make_pair()
        victim = 0x200000
        a.access_data(victim)
        assert llc.contains(victim)
        # B streams through > LLC capacity within the victim's set.
        for i in range(1, 64):
            b.access_data(victim + i * (llc.num_sets * 64))
        assert not llc.contains(victim)

    def test_wrong_path_visible_in_shared_stats(self):
        a, _, llc, _ = make_pair()
        a.access_data(0x900000, wrong_path=True)
        assert llc.stats.wp_accesses == 1
        assert llc.stats.wp_misses == 1
