"""Shared pytest configuration: hypothesis profiles + the slow marker.

Hypothesis profiles
    ``dev`` (default)  — fewer examples, no deadline: fast local edit
    loops and timing-noise-immune CI boxes.
    ``ci``             — full example counts, derandomized so a CI
    failure reproduces exactly, and ``print_blob`` so the failing
    example can be replayed locally.

    Select with ``HYPOTHESIS_PROFILE=ci pytest`` (the CI workflow does).

Slow tests
    Deep fuzz runs and other long soaks are marked ``@pytest.mark.slow``
    and skipped unless ``--runslow`` is passed (the nightly workflow
    does).
"""

import os

import pytest
from hypothesis import settings

settings.register_profile("dev", max_examples=25, deadline=None)
settings.register_profile("ci", max_examples=100, deadline=None,
                          derandomize=True, print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def pytest_addoption(parser):
    parser.addoption("--runslow", action="store_true", default=False,
                     help="run tests marked @pytest.mark.slow "
                          "(deep fuzz soaks)")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running deep tests, skipped unless "
                   "--runslow is given")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
