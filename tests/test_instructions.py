"""Unit tests for instruction decode metadata."""

import pytest

from repro.isa.instructions import (Instruction, InstrClass, OPCODES,
                                    classify_fu)


class TestRegSets:
    def test_alu_reads_writes(self):
        ins = Instruction("add", rd=5, rs1=6, rs2=7)
        assert ins.reads == (6, 7)
        assert ins.writes == (5,)

    def test_zero_register_excluded(self):
        ins = Instruction("add", rd=0, rs1=0, rs2=3)
        assert ins.reads == (3,)
        assert ins.writes == ()

    def test_load(self):
        ins = Instruction("lw", rd=5, rs1=6, imm=8)
        assert ins.reads == (6,)
        assert ins.writes == (5,)
        assert ins.is_load and ins.is_mem and not ins.is_store

    def test_store_reads_base_and_data(self):
        ins = Instruction("sw", rs1=6, rs2=7, imm=0)
        assert set(ins.reads) == {6, 7}
        assert ins.writes == ()
        assert ins.is_store and ins.is_mem

    def test_branch_reads(self):
        ins = Instruction("beq", rs1=5, rs2=6, target=0x100)
        assert set(ins.reads) == {5, 6}
        assert ins.is_branch and ins.is_control

    def test_fp_registers_in_sets(self):
        ins = Instruction("fadd", rd=33, rs1=34, rs2=35)
        assert ins.reads == (34, 35)
        assert ins.writes == (33,)

    def test_f0_is_a_real_register(self):
        # Internal index 32 is f0, not a zero register.
        ins = Instruction("fadd", rd=32, rs1=32, rs2=33)
        assert 32 in ins.reads
        assert ins.writes == (32,)

    def test_ecall_reads_syscall_regs(self):
        ins = Instruction("ecall")
        assert set(ins.reads) == {17, 10}
        assert ins.is_syscall


class TestControlClassification:
    def test_jal_is_direct_jump(self):
        ins = Instruction("jal", rd=1, target=0x2000)
        assert ins.cls is InstrClass.JUMP
        assert ins.is_control and not ins.is_branch
        assert ins.is_call and not ins.is_return

    def test_jalr_return_idiom(self):
        ins = Instruction("jalr", rd=0, rs1=1, imm=0)
        assert ins.is_indirect and ins.is_return and not ins.is_call

    def test_jalr_call(self):
        ins = Instruction("jalr", rd=1, rs1=5, imm=0)
        assert ins.is_call and not ins.is_return

    def test_fall_through(self):
        ins = Instruction("add", rd=1, rs1=2, rs2=3)
        ins.pc = 0x1000
        assert ins.fall_through == 0x1004


class TestFuClassification:
    @pytest.mark.parametrize("op,fu", [
        ("add", "alu"), ("mul", "mul"), ("div", "div"), ("fadd", "fp"),
        ("fdiv", "fp_div"), ("lw", "load"), ("sw", "store"),
        ("beq", "branch"), ("jal", "branch"), ("jalr", "branch"),
        ("ecall", "alu"),
    ])
    def test_fu_groups(self, op, fu):
        kwargs = {}
        if op in ("fadd", "fdiv"):
            kwargs = dict(rd=33, rs1=34, rs2=35)
        ins = Instruction(op, **kwargs)
        assert ins.fu == fu
        assert classify_fu(ins) == fu

    def test_every_opcode_has_fu(self):
        for name in OPCODES:
            ins = Instruction(name, rd=33 if OPCODES[name].rd_fp else 5,
                              rs1=34 if OPCODES[name].rs1_fp else 6,
                              rs2=35 if OPCODES[name].rs2_fp else 7)
            assert ins.fu in {"alu", "mul", "div", "fp", "fp_div", "load",
                              "store", "branch"}

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instruction("bogus")
