"""End-to-end minicc tests: compile and execute on the functional
emulator, checking program results (the codegen's real contract)."""

import pytest

from repro.functional.emulator import Emulator
from repro.minicc import CompileError, compile_source, compile_to_program


def run(source, max_instructions=2_000_000):
    emu = Emulator(compile_to_program(source))
    emu.run(max_instructions)
    assert emu.halted, "program did not finish"
    return emu.output


class TestArithmetic:
    def test_int_operators(self):
        out = run("""
        void main() {
            print_int(7 + 3 * 2);        // 13
            print_int((7 + 3) * 2);      // 20
            print_int(17 / 5);           // 3
            print_int(17 % 5);           // 2
            print_int(-17 / 5);          // -3 (truncating)
            print_int(1 << 10);          // 1024
            print_int(-8 >> 1);          // -4 (arithmetic)
            print_int(12 & 10);
            print_int(12 | 10);
            print_int(12 ^ 10);
            print_int(~0);
        }
        """)
        assert out == [13, 20, 3, 2, -3, 1024, -4, 8, 14, 6, -1]

    def test_comparisons(self):
        out = run("""
        void main() {
            print_int(3 < 4); print_int(4 < 3);
            print_int(3 <= 3); print_int(4 <= 3);
            print_int(4 > 3); print_int(3 > 4);
            print_int(3 >= 4); print_int(3 >= 3);
            print_int(5 == 5); print_int(5 != 5);
            print_int(-1 < 1);
        }
        """)
        assert out == [1, 0, 1, 0, 1, 0, 0, 1, 1, 0, 1]

    def test_logical_short_circuit(self):
        out = run("""
        int calls = 0;
        int bump() { calls += 1; return 1; }
        void main() {
            if (0 && bump()) { print_int(-1); }
            print_int(calls);           // 0: bump not called
            if (1 || bump()) { print_int(7); }
            print_int(calls);           // still 0
            if (1 && bump()) { print_int(8); }
            print_int(calls);           // 1
        }
        """)
        assert out == [0, 7, 0, 8, 1]

    def test_unary(self):
        out = run("""
        void main() {
            int x = 5;
            print_int(-x);
            print_int(!x);
            print_int(!0);
            print_int(~x);
        }
        """)
        assert out == [-5, 0, 1, -6]


class TestFloat:
    def test_mixed_arithmetic_promotes(self):
        out = run("""
        void main() {
            float f = 3;            // int -> float
            print_float(f / 2);     // 1.5
            int i = 7.9;            // float -> int truncates
            print_int(i);
            print_int(1.5 < 2);     // comparison yields int
        }
        """)
        assert out[0] == pytest.approx(1.5)
        assert out[1] == 7
        assert out[2] == 1

    def test_sqrtf_intrinsic(self):
        out = run("""
        void main() {
            print_float(sqrtf(16.0));
            print_float(fabsf(-2.5));
            print_float(sqrtf(2));      // int arg converts
        }
        """)
        assert out[0] == 4.0 and out[1] == 2.5
        assert out[2] == pytest.approx(2 ** 0.5)

    def test_float_literal_precision(self):
        out = run("void main() { print_float(0.000001 * 1000000.0); }")
        assert out[0] == pytest.approx(1.0, rel=1e-6)


class TestControlFlow:
    def test_nested_loops_with_break_continue(self):
        out = run("""
        void main() {
            int total = 0;
            for (int i = 0; i < 10; i += 1) {
                if (i == 7) { break; }
                int j = 0;
                while (j < 10) {
                    j += 1;
                    if (j % 2 == 0) { continue; }
                    total += 1;
                }
            }
            print_int(total);       // 7 outer x 5 odd j
        }
        """)
        assert out == [35]

    def test_do_while_runs_once(self):
        out = run("""
        void main() {
            int n = 0;
            do { n += 1; } while (0);
            print_int(n);
        }
        """)
        assert out == [1]

    def test_dangling_else_binds_inner(self):
        out = run("""
        void main() {
            int r = 0;
            if (1)
                if (0) r = 1;
                else r = 2;
            print_int(r);
        }
        """)
        assert out == [2]

    def test_for_scope_shadows(self):
        out = run("""
        void main() {
            int i = 99;
            for (int i = 0; i < 3; i += 1) { }
            print_int(i);
        }
        """)
        assert out == [99]


class TestFunctions:
    def test_recursion_deep(self):
        out = run("""
        int sum_to(int n) {
            if (n == 0) return 0;
            return n + sum_to(n - 1);
        }
        void main() { print_int(sum_to(100)); }
        """)
        assert out == [5050]

    def test_six_args(self):
        out = run("""
        int six(int a, int b, int c, int d, int e, int f) {
            return a + 2*b + 3*c + 4*d + 5*e + 6*f;
        }
        void main() { print_int(six(1, 2, 3, 4, 5, 6)); }
        """)
        assert out == [1 + 4 + 9 + 16 + 25 + 36]

    def test_float_args_and_return(self):
        out = run("""
        float mix(float a, int b, float c) { return a * b + c; }
        void main() { print_float(mix(1.5, 4, 0.5)); }
        """)
        assert out == [6.5]

    def test_mutual_recursion(self):
        out = run("""
        int is_odd(int n);
        """.replace("int is_odd(int n);", "") + """
        int is_even(int n) {
            if (n == 0) return 1;
            return is_odd(n - 1);
        }
        int is_odd(int n) {
            if (n == 0) return 0;
            return is_even(n - 1);
        }
        void main() { print_int(is_even(10)); print_int(is_odd(7)); }
        """)
        assert out == [1, 1]

    def test_call_preserves_caller_locals(self):
        out = run("""
        int clobber() {
            int a = 1; int b = 2; int c = 3; int d = 4;
            return a + b + c + d;
        }
        void main() {
            int x = 10; int y = 20; int z = 30;
            int r = clobber();
            print_int(x + y + z + r);
        }
        """)
        assert out == [70]

    def test_call_inside_expression_spills_temps(self):
        out = run("""
        int f(int x) { return x * 2; }
        void main() {
            print_int(100 + f(3) + f(4) * 10);
        }
        """)
        assert out == [100 + 6 + 80]

    def test_exit_code_from_main(self):
        emu = Emulator(compile_to_program(
            "int main() { return 42; }"))
        emu.run()
        assert emu.exit_code == 42


class TestGlobalsAndArrays:
    def test_global_scalar_rw(self):
        out = run("""
        int counter = 5;
        void main() {
            counter = counter + 10;
            print_int(counter);
        }
        """)
        assert out == [15]

    def test_array_init_and_default_zero(self):
        out = run("""
        int a[5] = {9, 8};
        void main() {
            print_int(a[0]); print_int(a[1]); print_int(a[4]);
        }
        """)
        assert out == [9, 8, 0]

    def test_float_array(self):
        out = run("""
        float f[3] = {0.5, 1.5};
        void main() {
            f[2] = f[0] + f[1];
            print_float(f[2]);
        }
        """)
        assert out == [2.0]

    def test_many_locals_spill_to_frame(self):
        # 14 int locals exceed the 10 callee-saved registers.
        decls = "\n".join(f"int v{i} = {i};" for i in range(14))
        adds = " + ".join(f"v{i}" for i in range(14))
        out = run("void main() { %s print_int(%s); }" % (decls, adds))
        assert out == [sum(range(14))]


class TestCompileErrors:
    @pytest.mark.parametrize("src,fragment", [
        ("void main() { x = 1; }", "undeclared"),
        ("void main() { int x = 1; int x = 2; }", "duplicate"),
        ("int x; int x; void main() {}", "duplicate"),
        ("void f() {} void main() { int x = f(); }", "void function"),
        ("void main() { int y = nothere(3); }", "unknown function"),
        ("int a[4]; void main() { a = 3; }", "array"),
        ("int a[4]; void main() { int x = a; }", "indexed"),
        ("void main() { int x = 1.5 % 2; }", "int operands"),
        ("void main() { float f = 1.0; if (f) { } }", "condition"),
        ("void main() { break; }", "outside loop"),
        ("int f() { return; } void main() {}", "must return"),
        ("void f() { return 3; } void main() {}", "cannot return"),
        ("void main() { print_int(1, 2); }", "1 argument"),
        ("int f(int a, int b, int c, int d, int e, int f2, int g)"
         " { return 0; } void main() {}", "6 parameters"),
    ])
    def test_errors(self, src, fragment):
        with pytest.raises(CompileError) as excinfo:
            compile_to_program(src)
        assert fragment in str(excinfo.value)

    def test_missing_main(self):
        with pytest.raises(CompileError):
            compile_source("int f() { return 1; }")


class TestGeneratedAssembly:
    def test_emits_start_stub(self):
        asm = compile_source("void main() {}")
        assert "_start:" in asm
        assert "call main" in asm

    def test_global_data_section(self):
        asm = compile_source("int a[3]; int b = 7; void main() {}")
        assert "a: .space 12" in asm
        assert "b: .word 7" in asm
