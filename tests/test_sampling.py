"""Tests for sampled (fast-forward + detailed interval) simulation."""

import pytest

from repro import CoreConfig, Simulator
from repro.minicc import compile_to_program
from repro.simulator.sampling import simulate_sampled

SOURCE = """
int table[4096];
void main() {
    int seed = 5;
    for (int i = 0; i < 4096; i += 1) {
        seed = seed * 1103515245 + 12345;
        table[i] = (seed >> 16) & 4095;
    }
    int acc = 0;
    for (int rep = 0; rep < 3; rep += 1) {
        for (int i = 0; i < 4096; i += 1) {
            if (table[table[i]] > 2048) {
                acc += 1;
            }
        }
    }
    print_int(acc);
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_to_program(SOURCE)


class TestSampling:
    def test_runs_and_partitions_stream(self, program):
        result = simulate_sampled(program, technique="nowp",
                                  config=CoreConfig.scaled(),
                                  detail_length=5000,
                                  fastforward_length=20_000)
        assert result.intervals >= 2
        assert result.detailed_instructions > 0
        assert result.warmed_instructions > result.detailed_instructions
        assert 0.1 < result.detail_fraction < 0.4
        assert result.ipc > 0

    def test_sampled_ipc_tracks_full_detail(self, program):
        """Sampling must approximate the full-detail IPC (SMARTS-style)."""
        cfg = CoreConfig.scaled()
        full = Simulator(program, config=cfg, technique="nowp").run()
        sampled = simulate_sampled(program, technique="nowp", config=cfg,
                                   detail_length=8000,
                                   fastforward_length=16_000)
        assert sampled.ipc == pytest.approx(full.ipc, rel=0.35)

    def test_zero_fastforward_equals_full_detail_count(self, program):
        result = simulate_sampled(program, technique="nowp",
                                  config=CoreConfig.scaled(),
                                  detail_length=10_000,
                                  fastforward_length=0,
                                  max_instructions=30_000)
        assert result.warmed_instructions == 0
        assert result.detailed_instructions == 30_000

    def test_wrong_path_techniques_work_in_samples(self, program):
        cfg = CoreConfig.scaled()
        result = simulate_sampled(program, technique="conv", config=cfg,
                                  detail_length=6000,
                                  fastforward_length=18_000)
        assert result.stats.wp_fetched > 0
        assert result.stats.conv_attempts > 0

    def test_wpemul_in_samples(self, program):
        result = simulate_sampled(program, technique="wpemul",
                                  config=CoreConfig.scaled(),
                                  detail_length=5000,
                                  fastforward_length=20_000)
        assert result.stats.wp_trace_missing == 0
        assert result.stats.wp_executed > 0

    def test_parameter_validation(self, program):
        with pytest.raises(ValueError):
            simulate_sampled(program, detail_length=0)
        with pytest.raises(ValueError):
            simulate_sampled(program, fastforward_length=-1)
        with pytest.raises(ValueError):
            simulate_sampled(program, technique="magic")

    def test_max_instructions_cap(self, program):
        result = simulate_sampled(program, technique="nowp",
                                  config=CoreConfig.scaled(),
                                  detail_length=1000,
                                  fastforward_length=1000,
                                  max_instructions=5000)
        assert result.total_instructions <= 6000
