"""Tests for sampled (fast-forward + detailed interval) simulation."""

import pytest

from repro import CoreConfig, Simulator
from repro.minicc import compile_to_program
from repro.simulator.sampling import (SampledResult, simulate_sampled,
                                      simulate_sampled_checkpointed)

SOURCE = """
int table[4096];
void main() {
    int seed = 5;
    for (int i = 0; i < 4096; i += 1) {
        seed = seed * 1103515245 + 12345;
        table[i] = (seed >> 16) & 4095;
    }
    int acc = 0;
    for (int rep = 0; rep < 3; rep += 1) {
        for (int i = 0; i < 4096; i += 1) {
            if (table[table[i]] > 2048) {
                acc += 1;
            }
        }
    }
    print_int(acc);
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_to_program(SOURCE)


class TestSampling:
    def test_runs_and_partitions_stream(self, program):
        result = simulate_sampled(program, technique="nowp",
                                  config=CoreConfig.scaled(),
                                  detail_length=5000,
                                  fastforward_length=20_000)
        assert result.intervals >= 2
        assert result.detailed_instructions > 0
        assert result.warmed_instructions > result.detailed_instructions
        assert 0.1 < result.detail_fraction < 0.4
        assert result.ipc > 0

    def test_interval_count_and_duty_cycle(self, program):
        """The stream partitions exactly: ff/detail alternation gives a
        predictable interval count and a detail fraction equal to the
        configured duty cycle (up to the final partial interval)."""
        detail, ff = 5000, 15_000
        result = simulate_sampled(program, technique="nowp",
                                  config=CoreConfig.scaled(),
                                  detail_length=detail,
                                  fastforward_length=ff)
        total = result.total_instructions
        period = detail + ff
        # Every full period contributes one detailed interval; a trailing
        # partial period contributes at most one more.
        assert total // period <= result.intervals <= total // period + 1
        # All but the last detailed interval are exactly detail_length.
        assert result.detailed_instructions <= result.intervals * detail
        assert result.detailed_instructions > (result.intervals - 1) * detail
        # Duty cycle: detail/(detail+ff) = 25%, within the tail's slack.
        assert result.detail_fraction == pytest.approx(
            detail / period, abs=0.05)

    def test_sampled_ipc_tracks_full_detail(self, program):
        """Sampling must approximate the full-detail IPC (SMARTS-style)."""
        cfg = CoreConfig.scaled()
        full = Simulator(program, config=cfg, technique="nowp").run()
        sampled = simulate_sampled(program, technique="nowp", config=cfg,
                                   detail_length=8000,
                                   fastforward_length=16_000)
        assert sampled.ipc == pytest.approx(full.ipc, rel=0.35)

    def test_zero_fastforward_equals_full_detail_count(self, program):
        result = simulate_sampled(program, technique="nowp",
                                  config=CoreConfig.scaled(),
                                  detail_length=10_000,
                                  fastforward_length=0,
                                  max_instructions=30_000)
        assert result.warmed_instructions == 0
        assert result.detailed_instructions == 30_000

    def test_wrong_path_techniques_work_in_samples(self, program):
        cfg = CoreConfig.scaled()
        result = simulate_sampled(program, technique="conv", config=cfg,
                                  detail_length=6000,
                                  fastforward_length=18_000)
        assert result.stats.wp_fetched > 0
        assert result.stats.conv_attempts > 0

    def test_instrec_in_samples(self, program):
        """instrec replays recorded wrong paths inside detailed
        intervals: it must fetch and execute wrong-path instructions but
        never recover data addresses (it models none)."""
        result = simulate_sampled(program, technique="instrec",
                                  config=CoreConfig.scaled(),
                                  detail_length=6000,
                                  fastforward_length=18_000)
        assert result.stats.wp_fetched > 0
        assert result.stats.wp_executed > 0
        assert result.stats.wp_addr_recovered == 0

    def test_wpemul_in_samples(self, program):
        result = simulate_sampled(program, technique="wpemul",
                                  config=CoreConfig.scaled(),
                                  detail_length=5000,
                                  fastforward_length=20_000)
        assert result.stats.wp_trace_missing == 0
        assert result.stats.wp_executed > 0

    def test_warm_gating_pins_detailed_results(self, program):
        """Gating wrong-path emulation off during fast-forward warming is
        pure wasted-work elimination: every counter of the detailed
        intervals must be bit-identical with the gate on or off."""
        cfg = CoreConfig.scaled()
        gated = simulate_sampled(program, technique="wpemul", config=cfg,
                                 detail_length=5000,
                                 fastforward_length=15_000,
                                 gate_warm_wp=True)
        ungated = simulate_sampled(program, technique="wpemul", config=cfg,
                                   detail_length=5000,
                                   fastforward_length=15_000,
                                   gate_warm_wp=False)
        assert gated.stats.counters() == ungated.stats.counters()
        assert gated.total_instructions == ungated.total_instructions
        assert gated.intervals == ungated.intervals

    def test_parameter_validation(self, program):
        with pytest.raises(ValueError):
            simulate_sampled(program, detail_length=0)
        with pytest.raises(ValueError):
            simulate_sampled(program, fastforward_length=-1)
        with pytest.raises(ValueError):
            simulate_sampled(program, technique="magic")

    def test_max_instructions_cap(self, program):
        """The budget is a hard cap: no interval may overshoot it."""
        result = simulate_sampled(program, technique="nowp",
                                  config=CoreConfig.scaled(),
                                  detail_length=1000,
                                  fastforward_length=1000,
                                  max_instructions=5000)
        assert result.total_instructions <= 5000
        # And the budget is actually used, not truncated a period early.
        assert result.total_instructions > 5000 - 2000

    def test_result_roundtrip(self, program):
        result = simulate_sampled(program, technique="nowp",
                                  config=CoreConfig.scaled(),
                                  detail_length=2000,
                                  fastforward_length=6000,
                                  max_instructions=20_000)
        clone = SampledResult.from_dict(result.to_dict())
        assert clone.to_dict() == result.to_dict()
        assert clone.digest() == result.digest()
        with pytest.raises(ValueError):
            SampledResult.from_dict(
                dict(result.to_dict(), schema=99))


class TestCheckpointedSampling:
    def test_matches_streaming_bit_exactly(self, program):
        """Checkpoint/restore is lossless: running every detailed
        interval from its snapshot in a fresh core must reproduce the
        streaming sampler's counters bit-for-bit — including under
        wpemul, whose frontend predictor copy rides in the snapshot."""
        cfg = CoreConfig.scaled()
        for technique in ("conv", "wpemul"):
            stream = simulate_sampled(program, technique, cfg,
                                      detail_length=5000,
                                      fastforward_length=15_000)
            chk = simulate_sampled_checkpointed(program, technique, cfg,
                                                detail_length=5000,
                                                fastforward_length=15_000)
            assert chk.stats.counters() == stream.stats.counters()
            assert chk.detailed_instructions == stream.detailed_instructions
            assert chk.total_instructions == stream.total_instructions
            assert chk.intervals == stream.intervals
            assert chk.mode == "checkpoint"
            assert len(chk.interval_results) == chk.intervals

    def test_checkpointed_respects_cap(self, program):
        result = simulate_sampled_checkpointed(
            program, "nowp", CoreConfig.scaled(),
            detail_length=1000, fastforward_length=1000,
            max_instructions=5000)
        assert result.total_instructions <= 5000


class TestSampleIntervalJob:
    def _job(self, **over):
        from repro.simulator.sampling import SampleIntervalJob, \
            functional_pass
        from repro.workloads import build_workload
        built = build_workload("gap.bfs", scale="tiny", check=False)
        plan = functional_pass(built.program, CoreConfig.scaled(),
                               detail_length=2000,
                               fastforward_length=6000)
        snap, length = plan.intervals[0]
        kwargs = dict(workload="gap.bfs", technique="conv", scale="tiny",
                      index=snap.index, length=length,
                      snapshot=snap.to_dict())
        kwargs.update(over)
        return SampleIntervalJob(**kwargs)

    def test_transport_round_trip(self):
        from repro.engine import job_from_transport
        from repro.engine.job import job_to_transport
        job = self._job()
        clone = job_from_transport(job_to_transport(job))
        assert clone.to_dict() == job.to_dict()
        assert clone.key == job.key

    def test_key_covers_snapshot_state(self):
        """Two interval jobs differing only in prefix state must never
        share a cache entry."""
        job = self._job()
        mutated = dict(job.snapshot)
        mutated = dict(mutated, position=mutated["position"] + 1)
        other = self._job(snapshot=mutated)
        assert other.key != job.key
        assert self._job(technique="nowp").key != job.key

    def test_run_and_result_round_trip(self):
        from repro.simulator.sampling import SampleIntervalJob
        job = self._job()
        result = job.run()
        assert result.instructions > 0
        assert result.ipc > 0
        clone = SampleIntervalJob.result_from_dict(result.to_dict())
        assert clone.to_dict() == result.to_dict()

    def test_engine_dispatch_matches_in_process(self, tmp_path):
        """The tentpole parity property at unit scale: in-process,
        engine-parallel and warm-cache runs share one digest."""
        from repro.engine import ExperimentEngine, ResultStore
        from repro.simulator.sampling import sample_workload
        kwargs = dict(technique="conv", scale="tiny",
                      detail_length=2000, fastforward_length=6000)
        serial = sample_workload("gap.bfs", **kwargs)
        engine = ExperimentEngine(store=ResultStore(str(tmp_path)),
                                  jobs=2)
        parallel = sample_workload("gap.bfs", engine=engine, **kwargs)
        warm = sample_workload("gap.bfs", engine=engine, **kwargs)
        assert parallel.digest() == serial.digest()
        assert warm.digest() == serial.digest()
