"""Tests for the Simulator composition and the experiment runner."""

import pytest

from repro import (ALL_TECHNIQUES, CoreConfig, Simulator, assemble,
                   compare_techniques, simulate)
from repro.minicc import compile_to_program

LOOP_SOURCE = """
int data[512];
void main() {
    int acc = 0;
    for (int i = 0; i < 512; i += 1) {
        data[i] = i * 7 % 129;
    }
    for (int rep = 0; rep < 4; rep += 1) {
        for (int i = 0; i < 512; i += 1) {
            if (data[i] % 3 == 0) {
                acc += data[i];
            }
        }
    }
    print_int(acc);
}
"""


@pytest.fixture(scope="module")
def loop_program():
    return compile_to_program(LOOP_SOURCE)


class TestSimulator:
    def test_runs_to_completion(self, loop_program):
        result = Simulator(loop_program, config=CoreConfig.scaled()).run()
        assert result.exit_code is not None
        assert result.instructions > 1000
        assert result.cycles > 0
        assert 0 < result.ipc < 8

    def test_functional_output_preserved(self, loop_program):
        result = simulate(loop_program, technique="conv",
                          config=CoreConfig.scaled())
        expected = sum(v for v in
                       ((i * 7 % 129) for i in range(512))
                       if v % 3 == 0) * 4
        assert result.output == [expected]

    def test_max_instructions_truncates(self, loop_program):
        result = Simulator(loop_program, max_instructions=500).run()
        assert result.instructions == 500

    def test_unknown_technique_rejected(self, loop_program):
        with pytest.raises(ValueError):
            Simulator(loop_program, technique="magic")

    def test_all_techniques_run(self, loop_program):
        for technique in ALL_TECHNIQUES:
            result = simulate(loop_program, technique=technique,
                              config=CoreConfig.scaled(),
                              max_instructions=4000)
            assert result.technique == technique
            assert result.instructions == 4000

    def test_deterministic(self, loop_program):
        a = simulate(loop_program, technique="conv",
                     config=CoreConfig.scaled())
        b = simulate(loop_program, technique="conv",
                     config=CoreConfig.scaled())
        assert a.cycles == b.cycles
        assert a.stats.wp_fetched == b.stats.wp_fetched

    def test_summary_mentions_key_metrics(self, loop_program):
        result = simulate(loop_program, max_instructions=2000)
        summary = result.summary()
        assert "IPC" in summary and "instrs" in summary


class TestComparison:
    def test_errors_relative_to_wpemul(self, loop_program):
        cmp = compare_techniques(loop_program,
                                 config=CoreConfig.scaled(),
                                 max_instructions=8000)
        errors = cmp.errors()
        assert errors["wpemul"] == 0.0
        assert set(errors) == set(ALL_TECHNIQUES)

    def test_reference_fallback_order(self, loop_program):
        cmp = compare_techniques(loop_program,
                                 config=CoreConfig.scaled(),
                                 techniques=("nowp", "conv"),
                                 max_instructions=4000)
        assert cmp.reference.technique == "conv"
        assert cmp.error("conv") == 0.0

    def test_slowdowns_positive(self, loop_program):
        cmp = compare_techniques(loop_program,
                                 config=CoreConfig.scaled(),
                                 max_instructions=8000)
        for technique, slowdown in cmp.slowdowns().items():
            assert slowdown > 0

    def test_identical_functional_behaviour(self, loop_program):
        """All four techniques must retire the same architectural stream."""
        cmp = compare_techniques(loop_program,
                                 config=CoreConfig.scaled())
        outputs = {t: tuple(r.output) for t, r in cmp.results.items()}
        assert len(set(outputs.values())) == 1
        counts = {r.instructions for r in cmp.results.values()}
        assert len(counts) == 1
