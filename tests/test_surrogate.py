"""Guardrails for the learned IPC surrogate (repro.analysis.surrogate).

The surrogate is *bounded, not trusted*: these tests hold it against
the real engine.

* **Differential** — a model trained on a real (tiny, seed-pinned)
  cached sweep must predict held-out points within the committed
  ``GUARDRAIL_MAX_MEAN_ERROR`` bound.
* **Metamorphic** — a perfect branch predictor can never be slower
  than gshare at the same point; the prediction path makes this
  structural, so it holds for any trained model.
* **Determinism** — same seed + same training set (any order) produce
  a bit-identical artifact; the digest survives JSON round-trips.
* **Properties** (hypothesis) — feature vectors are always finite and
  fixed-width for arbitrary valid configs and junk trace stats;
  episode statistics are invariant to record order.
* **Active learning** — a scripted oracle engine proves that refine
  spends exactly one oracle call per chosen point, honors the budget
  as a hard cap, and that refitting on the answers reduces error.
"""

import dataclasses
import itertools
import json
import math
import os
import random

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.surrogate import (GUARDRAIL_MAX_MEAN_ERROR,
                                      FeaturePipeline, LabeledPoint,
                                      PredictJob, SurrogateModel,
                                      evaluate, feature_names, harvest,
                                      predict_jobs, refine, sample_grid,
                                      split)
from repro.analysis.surrogate.features import (PREDICTOR_KINDS,
                                               feature_vector)
from repro.core.config import CoreConfig
from repro.engine import ExperimentEngine, ResultStore, SimJob
from repro.engine.job import job_from_transport, job_to_transport
from repro.fuzz.confgen import AXES
from repro.obs import TRACE_STAT_FIELDS, episode_statistics
from repro.simulator.simulation import ALL_TECHNIQUES

#: The seed-pinned training sweep: one workload, every technique, a
#: predictor x ROB grid.  Small enough to simulate in seconds, varied
#: enough that the model has real structure to learn.
SWEEP_AXES = {
    "predictor_kind": ("bimodal", "gshare", "tournament", "tage",
                       "perfect"),
    "rob_size": (32, 128),
}


def _sweep_jobs():
    jobs = []
    for kind, rob in itertools.product(*SWEEP_AXES.values()):
        for technique in ALL_TECHNIQUES:
            jobs.append(SimJob(
                workload="gap.bfs", technique=technique, scale="tiny",
                max_instructions=3000,
                config_overrides={"predictor_kind": kind,
                                  "rob_size": rob}))
    return jobs


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """A result store holding the full mini sweep (real simulations)."""
    root = tmp_path_factory.mktemp("surrogate-cache")
    engine = ExperimentEngine(store=ResultStore(str(root)), jobs=1)
    outcomes = engine.run(_sweep_jobs())
    assert all(o.result is not None for o in outcomes)
    return engine.store


@pytest.fixture(scope="module")
def points(store):
    return harvest(store)


@pytest.fixture(scope="module")
def trained(points):
    """(model, train_points, held_out_points) on a seeded split."""
    train_points, held = split(points, holdout=0.25, seed=0)
    model = SurrogateModel.train(train_points, seed=0, kind="gbm",
                                 members=3, estimators=60)
    return model, train_points, held


class TestHarvest:
    def test_harvests_every_sim_result(self, store, points):
        assert len(points) == len(_sweep_jobs())
        by_key = {p.key: p for p in points}
        for job in _sweep_jobs():
            assert job.key in by_key
            point = by_key[job.key]
            assert point.workload == "gap.bfs"
            assert point.ipc > 0
            assert point.job().key == job.key

    def test_points_sorted_and_independent_of_recency(self, store,
                                                      points):
        keys = [p.key for p in points]
        assert keys == sorted(keys)
        # Reshuffle the index's recency order: harvest must not care.
        rng = random.Random(7)
        shuffled = list(keys)
        rng.shuffle(shuffled)
        for key in shuffled:
            store.index.touch(key)
        assert [p.key for p in harvest(store)] == keys

    def test_skips_foreign_and_corrupt_blobs(self, store, points):
        foreign = "ab" * 32
        path = store.path_for(foreign)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            json.dump({"key": foreign, "job": {"what": 1},
                       "result": {"schema": 1}}, fh)
        store.index.put(foreign, os.path.getsize(path))
        corrupt = "cd" * 32
        path = store.path_for(corrupt)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write("{not json")
        store.index.put(corrupt, os.path.getsize(path))
        assert [p.key for p in harvest(store)] == \
            [p.key for p in points]

    def test_spec_twins_deduplicated(self, store, points,
                                     monkeypatch):
        # The same job re-cached under a drifted code fingerprint must
        # not become a second training point (it would leak the same
        # simulation into both sides of a train/holdout split).
        job = _sweep_jobs()[0]
        result = next(p for p in points if p.key == job.key)
        with open(store.path_for(result.key)) as fh:
            payload = json.load(fh)["result"]
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "drifted")
        assert job.key != result.key
        store.put_payload(job, payload)
        harvested = harvest(store)
        assert len(harvested) == len(points)
        kept = min(job.key, result.key)
        assert sum(1 for p in harvested
                   if p.job_dict == result.job_dict) == 1
        assert any(p.key == kept for p in harvested)

    def test_workload_and_technique_filters(self, store):
        assert harvest(store, workloads=["gap.pr"]) == []
        conv = harvest(store, techniques=["conv"])
        assert len(conv) == len(_sweep_jobs()) // len(ALL_TECHNIQUES)
        assert all(p.technique == "conv" for p in conv)

    def test_split_is_seeded_and_order_free(self, points):
        a = split(points, holdout=0.25, seed=3)
        b = split(list(reversed(points)), holdout=0.25, seed=3)
        assert [p.key for p in a[0]] == [p.key for p in b[0]]
        assert [p.key for p in a[1]] == [p.key for p in b[1]]
        assert split(points, holdout=0.25, seed=4) != a
        assert len(a[0]) + len(a[1]) == len(points)
        assert a[1] and a[0]


class TestDifferentialGuardrail:
    def test_held_out_error_within_committed_bound(self, trained):
        model, _, held = trained
        report = evaluate(model, held)
        assert report["n"] == len(held) > 0
        assert report["mean_rel_error"] <= GUARDRAIL_MAX_MEAN_ERROR, \
            (f"held-out mean |IPC error| {report['mean_rel_error']:.4f} "
             f"exceeds the committed bound {GUARDRAIL_MAX_MEAN_ERROR}")

    def test_predictions_positive_and_confident_in_range(self, trained,
                                                         points):
        model, _, _ = trained
        predictions = predict_jobs(model, [p.job() for p in points])
        for pred in predictions:
            assert pred.ipc > 0
            assert 0.0 < pred.confidence <= 1.0


class TestMetamorphic:
    def test_perfect_never_predicts_below_gshare(self, trained):
        model, _, _ = trained
        base = sample_grid(["gap.bfs", "gap.pr"], list(ALL_TECHNIQUES),
                           24, grid_seed=11, scale="tiny",
                           max_instructions=3000)

        def with_kind(job, kind):
            overrides = dict(job.config_overrides)
            overrides["predictor_kind"] = kind
            return dataclasses.replace(job,
                                       config_overrides=overrides)

        perfect = [with_kind(j, "perfect") for j in base]
        gshare = [with_kind(j, "gshare") for j in base]
        p_preds = predict_jobs(model, perfect)
        g_preds = predict_jobs(model, gshare)
        for p, g in zip(p_preds, g_preds):
            assert p.ipc >= g.ipc - 1e-12, (p, g)


class TestDeterminism:
    def test_same_seed_same_points_bit_identical(self, trained):
        model, train_points, _ = trained
        shuffled = list(train_points)
        random.Random(99).shuffle(shuffled)
        again = SurrogateModel.train(shuffled, seed=0, kind="gbm",
                                     members=3, estimators=60)
        assert again.to_dict() == model.to_dict()
        assert again.digest() == model.digest()

    def test_seed_changes_the_artifact(self, trained):
        _, train_points, _ = trained
        a = SurrogateModel.train(train_points, seed=0, kind="gbm",
                                 members=3, estimators=20)
        b = SurrogateModel.train(train_points, seed=1, kind="gbm",
                                 members=3, estimators=20)
        assert a.digest() != b.digest()

    def test_json_roundtrip_preserves_digest_and_predictions(
            self, trained, tmp_path):
        model, _, held = trained
        path = str(tmp_path / "model.json")
        model.save(path)
        loaded = SurrogateModel.load(path)
        assert loaded.digest() == model.digest()
        assert loaded.to_dict() == model.to_dict()
        jobs = [p.job() for p in held]
        before = [(p.ipc, p.confidence)
                  for p in predict_jobs(model, jobs)]
        after = [(p.ipc, p.confidence)
                 for p in predict_jobs(loaded, jobs)]
        assert before == after

    def test_schema_mismatch_rejected(self, trained):
        model, _, _ = trained
        stale = model.to_dict()
        stale["schema"] = 99
        with pytest.raises(ValueError):
            SurrogateModel.from_dict(stale)

    def test_needs_two_points(self, points):
        with pytest.raises(ValueError):
            SurrogateModel.train(points[:1], seed=0)


# -- hypothesis property tests -----------------------------------------------------

_axis_names = sorted(AXES)


@st.composite
def config_overrides(draw):
    axes = draw(st.lists(st.sampled_from(_axis_names), unique=True,
                         max_size=8))
    return {axis: draw(st.sampled_from(AXES[axis])) for axis in axes}


_junk_values = st.one_of(
    st.floats(allow_nan=True, allow_infinity=True),
    st.integers(min_value=-10**9, max_value=10**9),
    st.none(), st.text(max_size=4))

_stat_dicts = st.dictionaries(
    st.one_of(st.sampled_from(TRACE_STAT_FIELDS), st.text(max_size=8)),
    _junk_values, max_size=12)


class TestFeatureProperties:
    @given(overrides=config_overrides(),
           technique=st.sampled_from(sorted(ALL_TECHNIQUES) + ["???"]),
           program_stats=_stat_dicts, trace_stats=st.one_of(
               st.none(), _stat_dicts),
           scale=st.sampled_from(["tiny", "small", "medium", "weird"]),
           max_instructions=st.one_of(
               st.none(), st.integers(min_value=0, max_value=10**12)))
    def test_vectors_always_finite_and_fixed_width(
            self, overrides, technique, program_stats, trace_stats,
            scale, max_instructions):
        config = CoreConfig.scaled(**overrides)
        vector = feature_vector(config, technique, program_stats,
                                trace_stats, scale=scale,
                                max_instructions=max_instructions,
                                workload="gap.bfs")
        assert vector.shape == (len(feature_names()),)
        assert np.isfinite(vector).all()

    @given(overrides=config_overrides())
    def test_predictor_one_hot_matches_config(self, overrides):
        config = CoreConfig.scaled(**overrides)
        vector = feature_vector(config, "conv", {})
        names = feature_names()
        for kind in PREDICTOR_KINDS:
            value = vector[names.index(f"cfg.predictor_kind={kind}")]
            assert value == (1.0 if config.predictor_kind == kind
                             else 0.0)


_episode_records = st.lists(st.fixed_dictionaries({}, optional={
    "branch_kind": st.sampled_from(["conditional", "indirect",
                                    "return"]),
    "window_limit": st.integers(min_value=0, max_value=512),
    "wp_fetched": st.integers(min_value=0, max_value=10**6),
    "wp_executed": st.integers(min_value=0, max_value=10**6),
    "window_start": st.integers(min_value=0, max_value=10**9),
    "resolution": st.integers(min_value=0, max_value=10**9),
    "conv_attempted": st.integers(min_value=0, max_value=1),
    "conv_found": st.integers(min_value=0, max_value=1),
    "conv_distance": st.integers(min_value=0, max_value=10**4),
    "wp_addr_recovered": st.integers(min_value=0, max_value=10**4),
    "wp_mem_ops": st.integers(min_value=0, max_value=10**4),
    "cache": st.fixed_dictionaries({}, optional={
        level: st.fixed_dictionaries({
            "wp_hits": st.integers(min_value=0, max_value=10**4),
            "wp_misses": st.integers(min_value=0, max_value=10**4),
        }) for level in ("l1d", "l2", "llc")}),
}), max_size=30)


class TestEpisodeStatisticsProperties:
    @given(episodes=_episode_records,
           seed=st.integers(min_value=0, max_value=2**31))
    def test_order_invariant(self, episodes, seed):
        shuffled = list(episodes)
        random.Random(seed).shuffle(shuffled)
        assert episode_statistics(shuffled) == \
            episode_statistics(episodes)

    @given(episodes=_episode_records)
    def test_fields_complete_and_finite(self, episodes):
        stats = episode_statistics(episodes)
        assert tuple(stats) == TRACE_STAT_FIELDS
        assert all(math.isfinite(v) for v in stats.values())
        assert stats["episodes"] == len(episodes)


# -- active learning ---------------------------------------------------------------


class _OracleResult:
    def __init__(self, ipc):
        self.ipc = ipc
        self.instructions = 1000
        self.cycles = max(1, int(round(1000 / ipc)))


class _Outcome:
    def __init__(self, job, result):
        self.job = job
        self.result = result


class ScriptedEngine:
    """A fake engine whose ground truth is an analytic IPC surface;
    counts every oracle call per job key."""

    def __init__(self):
        self.calls = {}

    @staticmethod
    def true_ipc(job):
        config = job.config()
        base = {"nowp": 0.9, "instrec": 1.0, "conv": 1.1,
                "wpemul": 1.2}[job.technique]
        rank = {"bimodal": 0, "gshare": 1, "tournament": 2, "tage": 3,
                "perfect": 4}[config.predictor_kind]
        return (base + 0.08 * rank
                + 0.05 * math.log2(config.rob_size / 32.0))

    def run(self, jobs, fresh=False):
        outcomes = []
        for job in jobs:
            self.calls[job.key] = self.calls.get(job.key, 0) + 1
            outcomes.append(_Outcome(job, _OracleResult(
                self.true_ipc(job))))
        return outcomes


def _scripted_points(jobs):
    return [LabeledPoint(key=j.key, job_dict=j.to_dict(),
                         ipc=ScriptedEngine.true_ipc(j))
            for j in jobs]


class TestActiveLearning:
    GRID = dict(scale="tiny", max_instructions=3000)

    def _setup(self):
        seed_jobs = sample_grid(["gap.bfs"], ["conv", "nowp"], 16,
                                grid_seed=1, **self.GRID)
        training = _scripted_points(seed_jobs)
        model = SurrogateModel.train(training, seed=0, kind="gbm",
                                     members=3, estimators=40)
        candidates = sample_grid(["gap.bfs"], ["wpemul", "instrec"], 24,
                                 grid_seed=2, **self.GRID)
        return model, training, candidates

    def test_one_oracle_call_per_point_and_hard_budget(self):
        model, training, candidates = self._setup()
        engine = ScriptedEngine()
        refit, report = refine(model, candidates, engine, training,
                               budget=8)
        assert report.queried == 8 == report.budget
        assert sum(engine.calls.values()) == 8
        assert set(engine.calls.values()) == {1}
        candidate_keys = {j.key for j in candidates}
        assert set(engine.calls) <= candidate_keys
        assert report.n_train == len(training) + 8
        assert refit.digest() != model.digest()

    def test_refit_error_drops_on_queried_points(self):
        model, training, candidates = self._setup()
        engine = ScriptedEngine()
        _, report = refine(model, candidates, engine, training,
                           budget=8)
        assert report.mean_error_before > 0
        assert report.mean_error_after < report.mean_error_before

    def test_known_points_never_requeried(self):
        model, training, candidates = self._setup()
        known_job = training[0].job()
        engine = ScriptedEngine()
        _, report = refine(model, [known_job] + candidates, engine,
                           training, budget=100)
        assert known_job.key not in engine.calls
        assert report.queried == len(candidates)  # cap > unknowns

    def test_zero_budget_is_a_no_op(self):
        model, training, candidates = self._setup()
        engine = ScriptedEngine()
        refit, report = refine(model, candidates, engine, training,
                               budget=0)
        assert engine.calls == {}
        assert report.queried == 0
        assert refit.digest() == model.digest() == report.digest_after

    def test_lowest_confidence_points_chosen(self):
        model, training, candidates = self._setup()
        predictions = predict_jobs(model, candidates)
        ranked = sorted(predictions, key=lambda p: (p.confidence,
                                                    p.key))
        expected = {p.key for p in ranked[:5]}
        engine = ScriptedEngine()
        refine(model, candidates, engine, training, budget=5)
        assert set(engine.calls) == expected


class TestPredictJob:
    def _model_and_jobs(self, trained):
        model, _, _ = trained
        jobs = sample_grid(["gap.bfs"], ["conv"], 3, grid_seed=5,
                           scale="tiny", max_instructions=3000)
        return model, jobs

    def test_transport_roundtrip(self, trained):
        model, jobs = self._model_and_jobs(trained)
        job = PredictJob.for_jobs(model, jobs)
        again = job_from_transport(job_to_transport(job))
        assert isinstance(again, PredictJob)
        assert again.key == job.key
        assert [p.ipc for p in again.run().predictions] == \
            [p.ipc for p in job.run().predictions]

    def test_key_covers_model_digest_and_points(self, trained):
        model, jobs = self._model_and_jobs(trained)
        job = PredictJob.for_jobs(model, jobs)
        fewer = PredictJob.for_jobs(model, jobs[:2])
        assert fewer.key != job.key
        other_model = dataclasses.replace(
            job, model=None, model_digest="f" * 64)
        assert other_model.key != job.key

    def test_digest_mismatch_rejected(self, trained):
        model, jobs = self._model_and_jobs(trained)
        with pytest.raises(ValueError):
            PredictJob(model_digest="0" * 64,
                       points=[j.to_dict() for j in jobs],
                       model=model.to_dict())

    def test_engine_caches_predict_batches(self, trained, tmp_path):
        model, jobs = self._model_and_jobs(trained)
        engine = ExperimentEngine(
            store=ResultStore(str(tmp_path / "cache")), jobs=1)
        job = PredictJob.for_jobs(model, jobs)
        first = engine.run([job])[0]
        assert first.result is not None and not first.cached
        second = engine.run([PredictJob.for_jobs(model, jobs)])[0]
        assert second.cached
        assert [p.to_dict() for p in second.result.predictions] == \
            [p.to_dict() for p in first.result.predictions]

    def test_matches_inline_prediction(self, trained):
        model, jobs = self._model_and_jobs(trained)
        batch = PredictJob.for_jobs(model, jobs).run()
        inline = predict_jobs(model, jobs)
        assert [p.to_dict() for p in batch.predictions] == \
            [p.to_dict() for p in inline]


class TestFeaturePipelineCache:
    def test_program_stats_memoized(self):
        pipeline = FeaturePipeline()
        first = pipeline.program_stats("gap.bfs", "tiny", None)
        assert pipeline.program_stats("gap.bfs", "tiny", None) is first
        assert first["static_instructions"] > 0
        assert 0.0 < first["branch_fraction"] < 1.0

    def test_trace_profiles_reach_the_vector(self):
        with_trace = FeaturePipeline(
            {"gap.bfs": {"episodes": 100.0,
                         "indirect_fraction": 0.25}})
        without = FeaturePipeline()
        job = SimJob(workload="gap.bfs", scale="tiny",
                     max_instructions=3000)
        names = feature_names()
        vec_with = with_trace.job_vector(job)
        vec_without = without.job_vector(job)
        has_trace = names.index("trace.has_trace")
        assert vec_with[has_trace] == 1.0
        assert vec_without[has_trace] == 0.0
        indirect = names.index("trace.indirect_fraction")
        assert vec_with[indirect] == 0.25
