"""Unit tests for the convergence-exploitation technique (Section III-C):
one-sided convergence detection, dirty-register independence tracking and
address copying."""

from repro.frontend.dyninstr import DynInstr
from repro.isa.instructions import Instruction
from repro.wrongpath.base import WPItem
from repro.wrongpath.convergence import (_copy_addresses,
                                         _recover_addresses,
                                         _written_registers)


def ins(op, rd=0, rs1=0, rs2=0, pc=0):
    instruction = Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=0)
    instruction.pc = pc
    return instruction


def wp(op, pc, rd=0, rs1=0, rs2=0):
    return WPItem(ins(op, rd=rd, rs1=rs1, rs2=rs2, pc=pc), pc)


def cp(op, pc, rd=0, rs1=0, rs2=0, mem_addr=None, seq=0):
    instruction = ins(op, rd=rd, rs1=rs1, rs2=rs2, pc=pc)
    return DynInstr(seq, instruction, pc, pc + 4, False, mem_addr)


class TestConvergenceDetection:
    def test_wrong_path_prefix_case(self):
        """WP = WXYZ ABCD..., CP = ABCD...: convergence at CP start."""
        wp_items = [wp("add", 0x100, rd=5, rs1=6, rs2=7),   # W (prefix)
                    wp("add", 0x104, rd=8, rs1=6, rs2=7),   # X (prefix)
                    wp("lw", 0x200, rd=9, rs1=4),           # A (converged)
                    wp("lw", 0x204, rd=10, rs1=4)]          # B
        future = [cp("lw", 0x200, rd=9, rs1=4, mem_addr=0x7000),
                  cp("lw", 0x204, rd=10, rs1=4, mem_addr=0x7040)]
        distance, conv_pc = _recover_addresses(wp_items, future)
        assert distance == 2
        assert conv_pc == 0x200
        assert wp_items[2].mem_addr == 0x7000
        assert wp_items[3].mem_addr == 0x7040

    def test_correct_path_prefix_case(self):
        """CP = WXYZ ABCD..., WP = ABCD...: convergence inside CP."""
        wp_items = [wp("lw", 0x200, rd=9, rs1=4)]
        future = [cp("add", 0x100, rd=5, rs1=6, rs2=7),
                  cp("add", 0x104, rd=8, rs1=6, rs2=7),
                  cp("lw", 0x200, rd=9, rs1=4, mem_addr=0x8000)]
        distance, conv_pc = _recover_addresses(wp_items, future)
        assert distance == 2
        assert conv_pc == 0x200
        assert wp_items[0].mem_addr == 0x8000

    def test_no_convergence(self):
        wp_items = [wp("add", 0x100), wp("add", 0x104)]
        future = [cp("add", 0x900), cp("add", 0x904)]
        assert _recover_addresses(wp_items, future) is None

    def test_empty_future_window(self):
        assert _recover_addresses([wp("add", 0x100)], []) is None

    def test_prefers_shorter_distance(self):
        # Both directions "converge"; the shorter prefix must win.
        wp_items = [wp("add", 0x100),      # appears in CP at index 3
                    wp("lw", 0x200, rd=9, rs1=4)]  # CP[0] appears in WP @1
        future = [cp("lw", 0x200, rd=9, rs1=4, mem_addr=0x9000),
                  cp("add", 0x300),
                  cp("add", 0x304),
                  cp("add", 0x100)]
        distance, conv_pc = _recover_addresses(wp_items, future)
        assert distance == 1  # WP-prefix case, j == 1
        assert conv_pc == 0x200
        assert wp_items[1].mem_addr == 0x9000


class TestIndependenceCheck:
    def test_dirty_base_register_blocks_copy(self):
        """A load whose address register was written pre-convergence must
        not receive the correct-path address."""
        wp_items = [wp("add", 0x100, rd=4, rs1=6, rs2=7),   # writes x4!
                    wp("lw", 0x200, rd=9, rs1=4)]           # base = x4
        future = [cp("lw", 0x200, rd=9, rs1=4, mem_addr=0x7000)]
        distance, _ = _recover_addresses(wp_items, future)
        assert distance == 1
        assert wp_items[1].mem_addr is None

    def test_dirtiness_propagates_through_alu(self):
        wp_items = [wp("add", 0x100, rd=4, rs1=6, rs2=7),   # x4 dirty
                    wp("add", 0x200, rd=5, rs1=4, rs2=7),   # x5 <- dirty x4
                    wp("lw", 0x204, rd=9, rs1=5)]           # base x5 dirty
        future = [cp("add", 0x200, rd=5, rs1=4, rs2=7),
                  cp("lw", 0x204, rd=9, rs1=5, mem_addr=0x7000)]
        _recover_addresses(wp_items, future)
        assert wp_items[2].mem_addr is None

    def test_clean_recompute_clears_dirtiness(self):
        """Post-convergence instructions recomputing a register from clean
        sources make it clean again (the paper's running dirty set)."""
        wp_items = [wp("add", 0x100, rd=4, rs1=6, rs2=7),   # x4 dirty
                    wp("add", 0x200, rd=4, rs1=6, rs2=7),   # x4 <- clean
                    wp("lw", 0x204, rd=9, rs1=4)]
        future = [cp("add", 0x200, rd=4, rs1=6, rs2=7),
                  cp("lw", 0x204, rd=9, rs1=4, mem_addr=0x7000)]
        _recover_addresses(wp_items, future)
        assert wp_items[2].mem_addr == 0x7000

    def test_clean_load_result_is_clean(self):
        """A converged load with a clean address reloads the same value, so
        its destination becomes clean (memory deps are not tracked)."""
        wp_items = [wp("add", 0x100, rd=9, rs1=6, rs2=7),   # x9 dirty
                    wp("lw", 0x200, rd=9, rs1=4),           # x9 <- clean
                    wp("lw", 0x204, rd=10, rs1=9)]          # base x9 clean
        future = [cp("lw", 0x200, rd=9, rs1=4, mem_addr=0x7000),
                  cp("lw", 0x204, rd=10, rs1=9, mem_addr=0x7100)]
        _recover_addresses(wp_items, future)
        assert wp_items[2].mem_addr == 0x7100

    def test_scan_stops_at_divergence(self):
        wp_items = [wp("lw", 0x200, rd=9, rs1=4),
                    wp("add", 0x204, rd=1, rs1=2, rs2=3),
                    wp("lw", 0x300, rd=9, rs1=4)]   # diverged (pc != CP)
        future = [cp("add", 0x150),                 # prefix (k=1 case B)
                  cp("lw", 0x200, rd=9, rs1=4, mem_addr=0x7000),
                  cp("add", 0x204, rd=1, rs1=2, rs2=3),
                  cp("lw", 0x400, rd=9, rs1=4, mem_addr=0x8000)]
        _recover_addresses(wp_items, future)
        assert wp_items[0].mem_addr == 0x7000
        assert wp_items[2].mem_addr is None  # after divergence: no copy

    def test_store_address_recovered(self):
        wp_items = [wp("add", 0x100, rd=5, rs1=6, rs2=7),
                    WPItem(ins("sw", rs1=4, rs2=5, pc=0x200), 0x200)]
        future = [cp("sw", 0x200, rs1=4, rs2=5, mem_addr=0x7000)]
        _recover_addresses(wp_items, future)
        # Data register x5 is dirty but the BASE x4 is clean: the address
        # (not the data) is what cache modeling needs.
        assert wp_items[1].mem_addr == 0x7000


class TestHelpers:
    def test_written_registers(self):
        instrs = [ins("add", rd=5, rs1=1, rs2=2),
                  ins("lw", rd=7, rs1=3),
                  ins("sw", rs1=3, rs2=4)]
        assert _written_registers(instrs) == {5, 7}

    def test_copy_addresses_empty(self):
        _copy_addresses(zip([], []), set())  # no crash
