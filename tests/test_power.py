"""Tests for the wrong-path-aware power model."""

import pytest

from repro import CoreConfig, compare_techniques
from repro.analysis.power import (EnergyParams, PowerModel,
                                  wrong_path_power_report)
from repro.minicc import compile_to_program

KERNEL = """
int table[2048];
void main() {
    int seed = 7;
    for (int i = 0; i < 2048; i += 1) {
        seed = seed * 1103515245 + 12345;
        table[i] = (seed >> 16) & 2047;
    }
    int acc = 0;
    for (int i = 0; i < 2048; i += 1) {
        if (table[table[i]] > 1024) {
            acc += 1;
        }
    }
    print_int(acc);
}
"""


@pytest.fixture(scope="module")
def comparison():
    program = compile_to_program(KERNEL)
    return compare_techniques(program, config=CoreConfig.scaled(),
                              name="power-kernel")


class TestPowerModel:
    def test_nowp_has_zero_wrong_path_energy(self, comparison):
        estimate = PowerModel().estimate(comparison.results["nowp"])
        assert estimate.wrong_path_pj == 0.0
        assert estimate.wrong_path_fraction == 0.0
        assert estimate.correct_path_pj > 0
        assert estimate.leakage_pj > 0

    def test_wp_models_report_wrong_path_energy(self, comparison):
        for technique in ("instrec", "conv", "wpemul"):
            estimate = PowerModel().estimate(comparison.results[technique])
            assert estimate.wrong_path_pj > 0, technique
            assert 0 < estimate.wrong_path_fraction < 1

    def test_wpemul_wrong_path_energy_at_least_instrec(self, comparison):
        """instrec sees no wrong-path data-cache accesses, so its
        wrong-path energy underestimates wpemul's."""
        instrec = PowerModel().estimate(comparison.results["instrec"])
        wpemul = PowerModel().estimate(comparison.results["wpemul"])
        assert wpemul.wrong_path_pj > instrec.wrong_path_pj * 0.8

    def test_total_is_sum(self, comparison):
        estimate = PowerModel().estimate(comparison.results["conv"])
        assert estimate.total_pj == pytest.approx(
            estimate.correct_path_pj + estimate.wrong_path_pj
            + estimate.leakage_pj)

    def test_custom_params_scale(self, comparison):
        result = comparison.results["conv"]
        base = PowerModel().estimate(result)
        doubled = PowerModel(EnergyParams(
            instruction_base=16.0, alu_op=4.0, load_op=8.0, store_op=8.0,
            l1_access=20.0, l2_access=50.0, llc_access=120.0,
            memory_access=1000.0, leakage_per_cycle=6.0)).estimate(result)
        assert doubled.total_pj == pytest.approx(2 * base.total_pj,
                                                 rel=1e-6)

    def test_report_covers_all_techniques(self, comparison):
        report = wrong_path_power_report(comparison.results)
        assert set(report) == set(comparison.results)
        assert report["nowp"]["wrong_path_fraction"] == 0.0
        for row in report.values():
            assert row["total_pj"] > 0
