"""Tests for the simcheck static-analysis suite itself.

Each rule ships with a pair of fixture files under
``tests/data/simcheck/`` — one deliberately violating, one clean.  Bad
fixtures mark every line a finding must anchor to with a trailing
``# expect: SCnnn`` comment, so these tests pin rule ids *and* line
numbers without hard-coding them here.  The remaining tests cover the
engine machinery: fixture quarantine, inline allows, the line-robust
baseline workflow, CLI exit codes, and the real tree staying clean.
"""

import json
import os
import pathlib
import textwrap

import pytest

from simcheck import ALL_RULES, Baseline, ParseFailure, run_simcheck
from simcheck.engine import BASELINE_PATH, Project, collect_files, main

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURE_DIR = REPO_ROOT / "tests" / "data" / "simcheck"
RULE_IDS = ("SC001", "SC002", "SC003", "SC004", "SC005", "SC006",
            "SC007", "SC008", "SC009", "SC010")


def expected_lines(path):
    """Line numbers carrying a ``# expect: SCnnn`` marker."""
    return {lineno for lineno, line
            in enumerate(path.read_text().splitlines(), 1)
            if "# expect: SC" in line}


def scan(*paths, **kwargs):
    kwargs.setdefault("include_fixtures", True)
    new, _ = run_simcheck([str(p) for p in paths], **kwargs)
    return new


class TestRegistry:
    def test_at_least_ten_rules(self):
        assert len(ALL_RULES) >= 10

    def test_ids_unique_and_expected(self):
        ids = [rule.id for rule in ALL_RULES]
        assert len(ids) == len(set(ids))
        assert set(RULE_IDS) <= set(ids)

    def test_rule_shape(self):
        for rule in ALL_RULES:
            assert rule.id.startswith("SC") and rule.id[2:].isdigit()
            assert rule.title
            assert rule.severity in ("error", "warning")
            assert callable(rule.check)

    def test_every_rule_has_fixture_pair(self):
        for rule_id in RULE_IDS:
            stem = rule_id.lower()
            assert (FIXTURE_DIR / f"{stem}_bad.py").exists(), rule_id
            assert (FIXTURE_DIR / f"{stem}_good.py").exists(), rule_id


@pytest.mark.parametrize("rule_id", RULE_IDS)
class TestRuleFixtures:
    def test_bad_fixture_flagged_at_expected_lines(self, rule_id):
        path = FIXTURE_DIR / f"{rule_id.lower()}_bad.py"
        findings = scan(path)
        assert findings, f"{rule_id} bad fixture produced no findings"
        assert {f.rule for f in findings} == {rule_id}
        assert {f.line for f in findings} == expected_lines(path)

    def test_good_fixture_clean(self, rule_id):
        path = FIXTURE_DIR / f"{rule_id.lower()}_good.py"
        assert scan(path) == []

    def test_render_has_rule_id_and_location(self, rule_id):
        path = FIXTURE_DIR / f"{rule_id.lower()}_bad.py"
        rendered = scan(path)[0].render()
        assert rule_id in rendered
        assert f"{path.name}:" in rendered


class TestFixtureQuarantine:
    def test_fixtures_skipped_by_default(self):
        assert scan(FIXTURE_DIR, include_fixtures=False) == []

    def test_fixture_only_runs_named_rules(self):
        # The SC002 bad fixture prints inside a loop AND tests _obs — but
        # its deliberate badness must never trip other rules.
        findings = scan(FIXTURE_DIR / "sc002_bad.py")
        assert {f.rule for f in findings} == {"SC002"}


class TestAllowsAndBaseline:
    def _violating(self, tmp_path, extra=""):
        """A scratch src/repro module with one SC001 violation."""
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True, exist_ok=True)
        mod = pkg / "scratch.py"
        mod.write_text(textwrap.dedent("""\
            import time


            def stamp():
                return time.time()
            """) + extra)
        return mod

    def test_violation_reported_with_rule_and_line(self, tmp_path):
        mod = self._violating(tmp_path)
        findings = scan(mod)
        assert len(findings) == 1
        assert findings[0].rule == "SC001"
        assert findings[0].line == 5

    def test_inline_allow_suppresses(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        mod = pkg / "allowed.py"
        mod.write_text(
            "import time\n\n\n"
            "def stamp():\n"
            "    return time.time()"
            "  # simcheck: allow=SC001 timestamp is display-only\n")
        assert scan(mod) == []

    def test_allow_on_line_above(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        mod = pkg / "allowed2.py"
        mod.write_text(
            "import time\n\n\n"
            "def stamp():\n"
            "    # simcheck: allow=SC001 timestamp is display-only\n"
            "    return time.time()\n")
        assert scan(mod) == []

    def test_baseline_suppresses_and_survives_line_shift(self, tmp_path):
        mod = self._violating(tmp_path)
        baseline = Baseline.from_findings(scan(mod))

        new, suppressed = run_simcheck([str(mod)], baseline=baseline)
        assert new == []
        assert len(suppressed) == 1

        # Fingerprints hash the flagged line's text, not its number:
        # edits above the finding must not un-suppress it.
        mod.write_text("# an unrelated new comment\n" + mod.read_text())
        new, suppressed = run_simcheck([str(mod)], baseline=baseline)
        assert new == []
        assert len(suppressed) == 1

    def test_new_violation_escapes_baseline(self, tmp_path):
        mod = self._violating(tmp_path)
        baseline = Baseline.from_findings(scan(mod))
        self._violating(tmp_path, extra=(
            "\n\ndef fresh():\n    return time.time_ns()\n"))
        new, suppressed = run_simcheck([str(mod)], baseline=baseline)
        assert len(new) == 1
        assert "time_ns" in new[0].line_text
        assert len(suppressed) == 1

    def test_baseline_roundtrip_via_file(self, tmp_path):
        mod = self._violating(tmp_path)
        path = tmp_path / "baseline.json"
        Baseline.from_findings(scan(mod)).save(str(path))
        loaded = Baseline.load(str(path))
        new, suppressed = run_simcheck([str(mod)], baseline=loaded)
        assert new == [] and len(suppressed) == 1


class TestCli:
    def _violating(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        mod = pkg / "scratch.py"
        mod.write_text("import time\nSTAMP = time.time()\n")
        return mod

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "fine.py").write_text("VALUE = 1\n")
        assert main([str(pkg)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_seeded_violation_exits_nonzero_with_location(
            self, tmp_path, capsys):
        mod = self._violating(tmp_path)
        assert main([str(mod)]) == 1
        out = capsys.readouterr().out
        assert "SC001" in out
        assert f"scratch.py:2:" in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        mod = self._violating(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(mod), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert main([str(mod), "--baseline", str(baseline)]) == 0
        assert main([str(mod), "--baseline", str(baseline),
                     "--no-baseline"]) == 1
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_select_unknown_rule_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path), "--select", "SC999"]) == 2
        capsys.readouterr()

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        capsys.readouterr()

    def test_select_runs_only_named_rule(self, tmp_path):
        mod = self._violating(tmp_path)
        new, _ = run_simcheck([str(mod)], select=["SC002"])
        assert new == []


class TestRealTree:
    def test_repo_is_clean_under_committed_baseline(self):
        baseline = Baseline.load(BASELINE_PATH)
        new, _ = run_simcheck(
            [str(REPO_ROOT / part)
             for part in ("src", "tests", "tools", "benchmarks")],
            baseline=baseline)
        assert new == [], "\n".join(f.render() for f in new)

    def test_markers_attached_in_real_tree(self):
        # Guard against the markers silently detaching from their
        # defs/classes during refactors: the rules only fire while
        # these are indexed.
        files = collect_files([str(REPO_ROOT / "src")])
        project = Project(files)
        assert {"DynInstr", "WrongPathRecord", "WrongPathWindow"} \
            <= set(project.per_instruction)
        hot = {os.path.basename(src.path)
               for src in files if src.markers.get("hotpath")}
        assert {"frontend.py", "queue.py", "ooo.py"} <= hot


class TestBlockTemplateAudit:
    """SC003's block-superhandler arm: the template tables of the three
    rendering modules are dummy-rendered and AST-whitelisted, and the
    second sanctioned exec site (`superblock._compile_block`) is scoped
    to exactly that module."""

    REAL_MODULES = (
        "src/repro/functional/superblock.py",
        "src/repro/core/timingblock.py",
        "src/repro/wrongpath/streamblock.py",
    )

    def test_real_block_modules_clean(self):
        for rel in self.REAL_MODULES:
            findings = scan(REPO_ROOT / rel, include_fixtures=False)
            assert findings == [], \
                rel + "\n" + "\n".join(f.render() for f in findings)

    def _streamblock_variant(self, tmp_path, old, new):
        source = (REPO_ROOT / self.REAL_MODULES[2]).read_text()
        assert old in source, "tamper target drifted out of the module"
        mod = tmp_path / "src" / "repro" / "wrongpath" / "streamblock.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(source.replace(old, new))
        return mod

    def test_tampered_template_is_flagged(self, tmp_path):
        # A template body reaching outside the whitelist (here, an
        # __import__ call) must trip the dummy-render audit.
        mod = self._streamblock_variant(
            tmp_path,
            '"exec_plain": "complete = issue_c + {latency}",',
            '"exec_plain": "complete = __import__(\'os\').getpid()",')
        findings = [f for f in scan(mod) if f.rule == "SC003"]
        assert findings
        assert any("whitelist" in f.message for f in findings)

    def test_non_literal_table_is_flagged(self, tmp_path):
        # Hiding the table behind a dynamic construction defeats the
        # static audit, so it is a violation in itself.
        mod = self._streamblock_variant(
            tmp_path,
            "STREAM_TEMPLATES = {",
            "STREAM_TEMPLATES = dict()\n_UNAUDITED = {")
        findings = [f for f in scan(mod) if f.rule == "SC003"]
        assert any("STREAM_TEMPLATES" in f.message for f in findings)

    def test_exec_outside_sanctioned_sites_still_flagged(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        mod = pkg / "scratch_exec.py"
        mod.write_text("def build(src):\n    exec(src)\n")
        findings = [f for f in scan(mod) if f.rule == "SC003"]
        assert len(findings) == 1
        assert "sanctioned" in findings[0].message

    def test_compile_block_sanctioned_only_in_superblock(self, tmp_path):
        # The _compile_block carve-out is keyed to superblock.py's path;
        # the same function name elsewhere in repro stays forbidden.
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        mod = pkg / "sneaky.py"
        mod.write_text("def _compile_block(src):\n    exec(src)\n")
        findings = [f for f in scan(mod) if f.rule == "SC003"]
        assert len(findings) == 1


class TestExitCodes:
    """The CLI's 0/1/2 contract: clean, findings, broken input."""

    def test_unparseable_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main([str(bad)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_parse_failure_lists_every_bad_file(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text("def a(:\n")
        (tmp_path / "b.py").write_text("def b(:\n")
        assert main([str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "a.py" in err and "b.py" in err

    def test_collect_files_raises_parse_failure(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        with pytest.raises(ParseFailure) as excinfo:
            collect_files([str(tmp_path)])
        assert any("bad.py" in err for err in excinfo.value.errors)

    def test_jobs_zero_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "fine.py").write_text("VALUE = 1\n")
        assert main([str(tmp_path), "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_findings_exit_one_clean_exit_zero(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        mod = pkg / "scratch.py"
        mod.write_text("import time\nSTAMP = time.time()\n")
        assert main([str(mod), "--no-baseline"]) == 1
        mod.write_text("STAMP = 0\n")
        assert main([str(mod), "--no-baseline"]) == 0
        capsys.readouterr()


class TestParallelParse:
    def test_jobs_identical_output(self):
        kwargs = dict(include_fixtures=True, select=RULE_IDS)
        serial, _ = run_simcheck([str(FIXTURE_DIR)], jobs=1, **kwargs)
        parallel, _ = run_simcheck([str(FIXTURE_DIR)], jobs=4, **kwargs)
        assert serial, "fixture scan found nothing; comparison is vacuous"
        assert [(f.render(), f.fingerprint) for f in serial] == \
               [(f.render(), f.fingerprint) for f in parallel]

    def test_jobs_identical_collection(self, tmp_path):
        for name in ("b.py", "a.py", "c.py"):
            (tmp_path / name).write_text("VALUE = 1\n")
        serial = [f.path for f in collect_files([str(tmp_path)])]
        parallel = [f.path for f in collect_files([str(tmp_path)],
                                                  jobs=3)]
        assert serial == parallel == sorted(serial)


class TestBaselineMaintenance:
    def _tree_with_baseline(self, tmp_path):
        """A scratch tree whose one violation is baselined."""
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        mod = pkg / "scratch.py"
        mod.write_text("import time\nSTAMP = time.time()\n")
        baseline = tmp_path / "baseline.json"
        assert main([str(mod), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        return mod, baseline

    def test_stale_entry_warns_on_stderr(self, tmp_path, capsys):
        mod, baseline = self._tree_with_baseline(tmp_path)
        mod.write_text("STAMP = 0\n")  # fix -> entry goes stale
        capsys.readouterr()
        assert main([str(mod), "--baseline", str(baseline)]) == 0
        err = capsys.readouterr().err
        assert "stale baseline entry" in err
        assert "--prune-baseline" in err

    def test_strict_baseline_fails_on_stale(self, tmp_path, capsys):
        mod, baseline = self._tree_with_baseline(tmp_path)
        assert main([str(mod), "--baseline", str(baseline),
                     "--strict-baseline"]) == 0  # entry still live
        mod.write_text("STAMP = 0\n")
        assert main([str(mod), "--baseline", str(baseline),
                     "--strict-baseline"]) == 1
        capsys.readouterr()

    def test_prune_drops_only_stale_entries(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        keep = pkg / "keep.py"
        keep.write_text("import time\nSTAMP = time.time()\n")
        gone = pkg / "gone.py"
        gone.write_text("import time\nSTART = time.time_ns()\n")
        baseline = tmp_path / "baseline.json"
        assert main([str(pkg), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        gone.write_text("START = 0\n")
        capsys.readouterr()
        assert main([str(pkg), "--baseline", str(baseline),
                     "--prune-baseline"]) == 0
        assert "pruned 1" in capsys.readouterr().out
        entries = json.loads(baseline.read_text())["entries"]
        assert len(entries) == 1
        assert entries[0]["path"].endswith("keep.py")
        # After the prune the file is authoritative again.
        assert main([str(pkg), "--baseline", str(baseline),
                     "--strict-baseline"]) == 0
        capsys.readouterr()


class TestSarif:
    def _violating(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        mod = pkg / "scratch.py"
        mod.write_text("import time\nSTAMP = time.time()\n")
        return mod

    def test_sarif_report_structure(self, tmp_path, capsys):
        mod = self._violating(tmp_path)
        assert main([str(mod), "--no-baseline",
                     "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "simcheck"
        assert {r["id"] for r in driver["rules"]} >= set(RULE_IDS)
        result, = run["results"]
        assert result["ruleId"] == "SC001"
        assert driver["rules"][result["ruleIndex"]]["id"] == "SC001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("scratch.py")
        assert "\\" not in location["artifactLocation"]["uri"]
        assert location["region"]["startLine"] == 2
        fingerprint = result["partialFingerprints"]
        assert "simcheckFingerprint/v1" in fingerprint

    def test_sarif_fingerprint_matches_baseline(self, tmp_path, capsys):
        # GitHub dedups alerts on the partial fingerprint; it must be
        # the very hash the baseline workflow keys on.
        mod = self._violating(tmp_path)
        finding, = scan(mod)
        main([str(mod), "--no-baseline", "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)
        result, = log["runs"][0]["results"]
        assert result["partialFingerprints"]["simcheckFingerprint/v1"] \
            == finding.fingerprint

    def test_sarif_output_file_and_clean_run(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "fine.py").write_text("VALUE = 1\n")
        out = tmp_path / "scan.sarif"
        assert main([str(pkg), "--format", "sarif",
                     "--output", str(out)]) == 0
        log = json.loads(out.read_text())
        assert log["runs"][0]["results"] == []
        capsys.readouterr()


class TestInterproceduralIndexes:
    """The lazily-built call graph / effect index behind SC007-SC010."""

    def test_graph_resolves_cross_function_chain(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "chain.py").write_text(textwrap.dedent("""\
            def leaf():
                return open("x")


            def mid():
                return leaf()


            def top():
                return mid()
            """))
        project = Project(collect_files([str(pkg)]))
        top = next(f for f in project.graph.functions.values()
                   if f.name == "top")
        callees = [callee.name for _, callee
                   in project.graph.calls_in(top)]
        assert callees == ["mid"]
        witness = project.effects.sync_blocking_witness(top)
        assert witness is not None
        assert "leaf" in witness.describe()

    def test_indexes_are_lazy(self, tmp_path):
        (tmp_path / "mod.py").write_text("VALUE = 1\n")
        project = Project(collect_files([str(tmp_path)]))
        assert project._graph is None and project._effects is None
        project.effects
        assert project._graph is not None
