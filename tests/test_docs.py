"""Tests for tools/check_docs.py and for the repo docs themselves.

The checker's parsing helpers are tested against synthetic markdown;
the final test runs the full check over the real top-level docs, so a
broken cross-reference or a stale ``>>>`` example fails tier-1 (not
just the CI docs job).
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "tools"))
import check_docs  # noqa: E402


class TestSlugify:
    def test_basic(self):
        assert check_docs.slugify("Inspecting a run") == "inspecting-a-run"

    def test_punctuation_dropped_code_spans_kept(self):
        assert (check_docs.slugify("7.2 The `zero-cost` hook, contract!")
                == "72-the-zero-cost-hook-contract")

    def test_links_reduced_to_text(self):
        assert check_docs.slugify("See [DESIGN](DESIGN.md)") == "see-design"


class TestHeadingSlugs:
    def test_duplicates_get_github_suffix(self):
        slugs = check_docs.heading_slugs(
            "# Setup\n\n## Setup\n\ntext\n")
        assert "setup" in slugs and "setup-1" in slugs

    def test_headings_inside_fences_ignored(self):
        slugs = check_docs.heading_slugs(
            "# Real\n```bash\n# not a heading\n```\n")
        assert list(slugs) == ["real"]


class TestExtractLinks:
    MD = ("See [a](other.md) and [b](other.md#sec) and "
          "[c](#local) and ![img](pic.png) and [web](https://x.y).\n"
          "```\n[not](a-link.md)\n```\n")

    def test_images_and_fences_skipped(self):
        targets = [t for _, t in check_docs.extract_links(self.MD)]
        assert targets == ["other.md", "other.md#sec", "#local",
                           "https://x.y"]


class TestCheckFileLinks:
    @pytest.fixture()
    def docroot(self, tmp_path):
        (tmp_path / "other.md").write_text("# Section One\n")
        return tmp_path

    def _check(self, docroot, body):
        (docroot / "doc.md").write_text(body)
        return check_docs.check_file_links("doc.md", root=str(docroot))

    def test_good_links_pass(self, docroot):
        assert self._check(
            docroot, "# T\n[x](other.md) [y](other.md#section-one) "
                     "[z](#t) [w](https://example.com)\n") == []

    def test_broken_file_reported(self, docroot):
        problems = self._check(docroot, "[x](missing.md)\n")
        assert len(problems) == 1 and "missing.md" in problems[0]

    def test_broken_anchor_reported(self, docroot):
        problems = self._check(docroot, "# T\n[x](other.md#nope)\n")
        assert len(problems) == 1 and "#nope" in problems[0]

    def test_broken_local_anchor_reported(self, docroot):
        problems = self._check(docroot, "# T\n[x](#absent)\n")
        assert len(problems) == 1 and "#absent" in problems[0]


class TestCodeBlocks:
    def test_python_blocks_extracted_with_line_numbers(self):
        text = "intro\n```python\nx = 1\n```\n```bash\nls(\n```\n"
        blocks = check_docs.python_blocks(text)
        assert blocks == [(3, "x = 1")]

    def test_compile_failure_reported(self, tmp_path):
        (tmp_path / "bad.md").write_text(
            "```python\ndef broken(:\n```\n")
        problems = check_docs.check_file_codeblocks(
            "bad.md", root=str(tmp_path))
        assert len(problems) == 1
        assert "does not compile" in problems[0]

    def test_doctest_style_blocks_deferred(self, tmp_path):
        (tmp_path / "d.md").write_text(
            "```python\n>>> this is doctest, not a script\n```\n")
        assert check_docs.check_file_codeblocks(
            "d.md", root=str(tmp_path)) == []


class TestSimcheckRulePass:
    def test_real_docs_rule_mentions_resolve(self):
        assert check_docs.check_simcheck_rules() == []

    def test_phantom_rule_mention_reported(self, tmp_path):
        # A doc naming a rule the suite doesn't register must fail.
        for relpath in check_docs.CHECKED_FILES:
            dest = tmp_path / relpath
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text("# stub\n")
        from simcheck import ALL_RULES
        registered = " ".join(rule.id for rule in ALL_RULES)
        (tmp_path / "DESIGN.md").write_text(
            f"# stub\n{registered} and SC999.\n")
        problems = check_docs.check_simcheck_rules(root=str(tmp_path))
        assert len(problems) == 1 and "SC999" in problems[0]

    def test_undocumented_rule_reported(self, tmp_path):
        # DESIGN.md silent about a registered rule must fail too.
        for relpath in check_docs.CHECKED_FILES:
            dest = tmp_path / relpath
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text("# stub\n")
        (tmp_path / "DESIGN.md").write_text(
            "# stub\nOnly SC001 is described here.\n")
        problems = check_docs.check_simcheck_rules(root=str(tmp_path))
        assert any("SC002" in p and "never documented" in p
                   for p in problems)


class TestDesignSectionPass:
    DESIGN = ("# t\n## 1. One\n### 1.1 Sub\n### 1.2 Sub\n## 2. Two\n"
              "As §1.2 says.\n")

    def _stub_tree(self, tmp_path, design):
        for relpath in check_docs.CHECKED_FILES:
            dest = tmp_path / relpath
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text("# stub\n")
        (tmp_path / "DESIGN.md").write_text(design)

    def test_real_docs_section_refs_resolve(self):
        assert check_docs.check_design_sections() == []

    def test_well_formed_numbering_passes(self, tmp_path):
        self._stub_tree(tmp_path, self.DESIGN)
        assert check_docs.check_design_sections(root=str(tmp_path)) == []

    def test_dangling_reference_reported(self, tmp_path):
        self._stub_tree(tmp_path, self.DESIGN)
        (tmp_path / "README.md").write_text("See DESIGN.md §7 for it.\n")
        problems = check_docs.check_design_sections(root=str(tmp_path))
        assert len(problems) == 1 and "§7" in problems[0]
        assert problems[0].startswith("README.md:1:")

    def test_gap_after_insertion_reported(self, tmp_path):
        # The renumbering failure mode: a chapter inserted as "2"
        # without shifting the old "2" onward.
        self._stub_tree(tmp_path, "# t\n## 1. One\n## 2. New\n## 2. Old\n")
        problems = check_docs.check_design_sections(root=str(tmp_path))
        assert any("duplicate section number 2" in p for p in problems)
        self._stub_tree(tmp_path, "# t\n## 1. One\n## 3. Skipped\n")
        problems = check_docs.check_design_sections(root=str(tmp_path))
        assert any("section 3 out of sequence" in p for p in problems)

    def test_orphan_subsection_reported(self, tmp_path):
        self._stub_tree(tmp_path, "# t\n## 1. One\n### 2.1 Orphan\n")
        problems = check_docs.check_design_sections(root=str(tmp_path))
        assert any("subsection 2.1 out of sequence" in p
                   for p in problems)

    def test_references_inside_fences_ignored(self, tmp_path):
        self._stub_tree(tmp_path, self.DESIGN)
        (tmp_path / "README.md").write_text("```\n§9 in output\n```\n")
        assert check_docs.check_design_sections(root=str(tmp_path)) == []


class TestRealDocs:
    """The actual repo docs must pass every check."""

    @pytest.mark.parametrize("relpath", check_docs.CHECKED_FILES)
    def test_links(self, relpath):
        assert check_docs.check_file_links(relpath) == []

    @pytest.mark.parametrize("relpath", check_docs.CHECKED_FILES)
    def test_codeblocks(self, relpath):
        assert check_docs.check_file_codeblocks(relpath) == []

    @pytest.mark.parametrize("relpath", check_docs.DOCTEST_FILES)
    def test_doctests(self, relpath):
        assert check_docs.check_file_doctests(relpath) == []
