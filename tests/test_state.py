"""Unit tests for architectural state and checkpointing."""

from repro.functional.state import ArchState
from repro.isa.program import STACK_TOP


class TestArchState:
    def test_initial_state(self):
        state = ArchState(entry=0x1000)
        assert state.pc == 0x1000
        assert state.x[0] == 0
        assert state.x[2] == STACK_TOP  # sp
        assert all(v == 0.0 for v in state.f)

    def test_x0_writes_ignored(self):
        state = ArchState()
        state.write(0, 42)
        assert state.read(0) == 0

    def test_int_writes_mask(self):
        state = ArchState()
        state.write(5, -1)
        assert state.read(5) == 0xFFFFFFFF

    def test_fp_unified_indexing(self):
        state = ArchState()
        state.write(32, 2.5)
        assert state.read(32) == 2.5
        assert state.f[0] == 2.5

    def test_fp_write_coerces_float(self):
        state = ArchState()
        state.write(40, 3)
        assert state.read(40) == 3.0
        assert isinstance(state.read(40), float)


class TestCheckpoint:
    def test_restore_registers_and_pc(self):
        state = ArchState(entry=0x100)
        state.write(5, 7)
        state.write(33, 1.5)
        snap = state.checkpoint()
        state.write(5, 99)
        state.write(33, -2.0)
        state.pc = 0x999
        state.restore(snap)
        assert state.pc == 0x100
        assert state.read(5) == 7
        assert state.read(33) == 1.5

    def test_checkpoint_is_deep_enough(self):
        state = ArchState()
        snap = state.checkpoint()
        state.write(6, 123)
        assert snap[1][6] == 0  # snapshot unaffected by later writes
