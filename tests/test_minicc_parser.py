"""Unit tests for the minicc parser."""

import pytest

from repro.minicc import ast
from repro.minicc.parser import ParseError, parse


def parse_body(body):
    """Parse statements inside a main() wrapper."""
    unit = parse("void main() { %s }" % body)
    return unit.functions[0].body.statements


def parse_expr(expr):
    stmt = parse_body(f"x = {expr};")
    # A bare global named x is undeclared, but parsing succeeds; the
    # statement is an Assign whose value is the expression of interest.
    return stmt[0].value


class TestTopLevel:
    def test_globals_and_functions(self):
        unit = parse("""
        int scalar = 5;
        float farr[10];
        int addone(int x) { return x + 1; }
        void main() { }
        """)
        assert [g.name for g in unit.globals] == ["scalar", "farr"]
        assert unit.globals[0].init == 5
        assert unit.globals[1].size == 10
        assert [f.name for f in unit.functions] == ["addone", "main"]

    def test_array_initializer(self):
        unit = parse("int a[4] = {1, -2, 3}; void main() {}")
        assert unit.globals[0].init == [1, -2, 3]

    def test_float_global_init(self):
        unit = parse("float f = -2.5; void main() {}")
        assert unit.globals[0].init == -2.5

    def test_params(self):
        unit = parse("int f(int a, float b) { return a; } void main() {}")
        params = unit.functions[0].params
        assert [(p.type, p.name) for p in params] == [("int", "a"),
                                                      ("float", "b")]

    def test_void_param_list(self):
        unit = parse("int f(void) { return 0; } void main() {}")
        assert unit.functions[0].params == []

    @pytest.mark.parametrize("src", [
        "void x; void main() {}",
        "int a[0]; void main() {}",
        "int a[2] = {1,2,3}; void main() {}",
        "int f(int) { return 0; } void main() {}",
    ])
    def test_bad_declarations(self, src):
        with pytest.raises(ParseError):
            parse(src)


class TestStatements:
    def test_if_else_chain(self):
        stmts = parse_body("if (1) x = 1; else if (2) x = 2; else x = 3;")
        node = stmts[0]
        assert isinstance(node, ast.If)
        assert isinstance(node.otherwise, ast.If)

    def test_loops(self):
        stmts = parse_body("""
            while (1) { break; }
            do { continue; } while (0);
            for (int i = 0; i < 4; i += 1) { }
            for (;;) { break; }
        """)
        assert isinstance(stmts[0], ast.While)
        assert isinstance(stmts[1], ast.DoWhile)
        assert isinstance(stmts[2], ast.For)
        empty_for = stmts[3]
        assert empty_for.init is None and empty_for.cond is None

    def test_local_decl_with_init(self):
        stmts = parse_body("int v = 3 + 4;")
        decl = stmts[0]
        assert isinstance(decl, ast.VarDecl)
        assert isinstance(decl.init, ast.Binary)

    def test_local_arrays_rejected(self):
        with pytest.raises(ParseError):
            parse_body("int a[4];")

    def test_array_assignment(self):
        stmts = parse_body("a[i + 1] = 5;")
        target = stmts[0].target
        assert isinstance(target, ast.ArrayRef)
        assert isinstance(target.index, ast.Binary)

    def test_compound_assignment_desugars(self):
        stmts = parse_body("x += 2; a[0] -= 3;")
        plus = stmts[0]
        assert isinstance(plus, ast.Assign)
        assert isinstance(plus.value, ast.Binary) and plus.value.op == "+"
        minus = stmts[1]
        assert minus.value.op == "-"
        assert isinstance(minus.target, ast.ArrayRef)

    def test_call_statement(self):
        stmts = parse_body("print_int(42);")
        assert isinstance(stmts[0], ast.ExprStmt)
        assert isinstance(stmts[0].expr, ast.Call)

    def test_return_forms(self):
        stmts = parse_body("return; ")
        assert stmts[0].value is None
        stmts = parse_body("return 1 + 2;")
        assert isinstance(stmts[0].value, ast.Binary)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_compare_over_logic(self):
        expr = parse_expr("a < b && c > d")
        assert expr.op == "&&"
        assert expr.left.op == "<" and expr.right.op == ">"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-" and expr.left.op == "-"
        assert expr.right.value == 3

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*" and expr.left.op == "+"

    def test_unary_nesting(self):
        expr = parse_expr("-!~x")
        assert expr.op == "-"
        assert expr.operand.op == "!"
        assert expr.operand.operand.op == "~"

    def test_call_and_index_expressions(self):
        expr = parse_expr("f(a[1], g())")
        assert isinstance(expr, ast.Call)
        assert isinstance(expr.args[0], ast.ArrayRef)
        assert isinstance(expr.args[1], ast.Call)

    def test_shift_precedence(self):
        expr = parse_expr("a >> 2 & 3")   # C: & below shift
        assert expr.op == "&"
        assert expr.left.op == ">>"

    @pytest.mark.parametrize("src", [
        "void main() { x = ; }",
        "void main() { if 1 x = 2; }",
        "void main() { while (1) ",
        "void main() { break }",
        "void main() { 1 +; }",
    ])
    def test_parse_errors(self, src):
        with pytest.raises(ParseError):
            parse(src)

    def test_error_has_line(self):
        with pytest.raises(ParseError) as excinfo:
            parse("void main() {\n\n  x = ;\n}")
        assert "line 3" in str(excinfo.value)
