"""Cross-technique architectural equivalence over the workload suite.

Wrong-path modeling is a *microarchitectural* concern: whatever
technique simulates the wrong path, the architectural execution —
retired instruction count, final register file, final memory image,
program output — must be identical, and identical to a pure functional
emulation of the same program.  The fuzzer checks this on random
programs (:mod:`repro.fuzz`); these tests pin it on every committed
GAP and SPEC-like workload.

Tier-1 keeps the caps small: every workload is compared on a capped
prefix (where only the retired count is technique-comparable — the
frontend legitimately runs ahead of the cap by a refill-dependent
amount), plus a fast subset is run to halt for the full-state check.
The ``slow`` marker extends run-to-halt coverage to the whole suite
(the nightly job runs it).
"""

import pytest

from repro import CoreConfig, Simulator
from repro.functional.emulator import Emulator
from repro.fuzz.oracle import _arch_snapshot, _reference_snapshot
from repro.simulator.simulation import ALL_TECHNIQUES
from repro.workloads import build_workload, workload_names

#: Tiny-scale workloads that halt within ~25k instructions — cheap
#: enough to run to completion under all four techniques in tier-1.
RUN_TO_HALT = ("gap.bfs", "spec.fp.matvec_like", "spec.fp.reduce_like")


def _snapshots(program, name, max_instructions=None):
    snaps = {}
    for technique in ALL_TECHNIQUES:
        sim = Simulator(program, config=CoreConfig.scaled(),
                        technique=technique,
                        max_instructions=max_instructions, name=name)
        result = sim.run()
        snaps[technique] = _arch_snapshot(sim, result)
    return snaps


def _assert_halted_equivalence(name):
    workload = build_workload(name, scale="tiny", check=False)
    snaps = _snapshots(workload.program, name)
    base = snaps["nowp"]
    assert base["halted"], f"{name} did not halt at tiny scale"
    for technique in ALL_TECHNIQUES[1:]:
        diff = sorted(k for k in base if base[k] != snaps[technique][k])
        assert not diff, f"{name}: {technique} diverges in {diff}"

    reference = Emulator(workload.program)
    reference.run(2_000_000)
    ref = _reference_snapshot(reference)
    diff = sorted(k for k in ref if ref[k] != base[k])
    assert not diff, f"{name}: simulation diverges from emulator in {diff}"


@pytest.mark.parametrize("name", workload_names())
def test_retired_count_identical_under_cap(name):
    workload = build_workload(name, scale="tiny", check=False)
    snaps = _snapshots(workload.program, name, max_instructions=6000)
    retired = {t: s["retired"] for t, s in snaps.items()}
    assert len(set(retired.values())) == 1, retired


@pytest.mark.parametrize("name", RUN_TO_HALT)
def test_full_state_identical_at_halt(name):
    _assert_halted_equivalence(name)


@pytest.mark.slow
@pytest.mark.parametrize("name", workload_names())
def test_full_state_identical_at_halt_all_workloads(name):
    if name in ("gap.tc", "spec.fp.fftpass_like"):
        pytest.skip("does not halt within 300k instructions at tiny "
                    "scale")
    _assert_halted_equivalence(name)
