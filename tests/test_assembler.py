"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import (AssemblerError, assemble, bits_to_float,
                                 float_to_bits)
from repro.isa.program import DATA_BASE, TEXT_BASE


class TestBasicAssembly:
    def test_simple_program(self):
        prog = assemble("add x1, x2, x3\nsub x4, x5, x6\n")
        assert len(prog) == 2
        assert prog.instructions[0].op == "add"
        assert prog.instructions[0].pc == TEXT_BASE
        assert prog.instructions[1].pc == TEXT_BASE + 4

    def test_comments_and_blank_lines(self):
        prog = assemble("""
            # full-line comment
            add x1, x2, x3   # trailing comment

        """)
        assert len(prog) == 1

    def test_labels_resolve_forward_and_backward(self):
        prog = assemble("""
        start:
            beq x1, x2, end
            j start
        end:
            ecall
        """)
        beq, j, _ = prog.instructions
        assert beq.target == TEXT_BASE + 8
        assert j.target == TEXT_BASE

    def test_label_on_same_line_as_instruction(self):
        prog = assemble("loop: addi x1, x1, 1\nj loop\n")
        assert prog.instructions[1].target == TEXT_BASE

    def test_entry_prefers_start_then_main(self):
        prog = assemble("nop\nmain: nop\n")
        assert prog.entry == TEXT_BASE + 4
        prog = assemble("nop\n_start: nop\nmain: nop\n")
        assert prog.entry == TEXT_BASE + 4
        prog = assemble("nop\n")
        assert prog.entry == TEXT_BASE


class TestOperandFormats:
    def test_immediates(self):
        prog = assemble("addi t0, t1, -42\naddi t0, t1, 0x10\n")
        assert prog.instructions[0].imm == -42
        assert prog.instructions[1].imm == 16

    def test_char_immediate(self):
        prog = assemble("li a0, 'A'\n")
        assert prog.instructions[0].imm == 65

    def test_memory_operands(self):
        prog = assemble("lw t0, 8(sp)\nsw t1, -4(s0)\n")
        lw, sw = prog.instructions
        assert lw.imm == 8 and lw.rs1 == 2 and lw.rd == 5
        assert sw.imm == -4 and sw.rs1 == 8 and sw.rs2 == 6

    def test_jalr(self):
        prog = assemble("jalr ra, t0, 4\n")
        ins = prog.instructions[0]
        assert ins.rd == 1 and ins.rs1 == 5 and ins.imm == 4

    def test_fli_float_immediate(self):
        prog = assemble("fli ft0, 0.25\n")
        assert prog.instructions[0].imm == 0.25

    def test_li_with_symbol(self):
        prog = assemble("""
        .data
        table: .word 1, 2
        .text
        li t0, table
        """)
        assert prog.instructions[0].imm == DATA_BASE


class TestPseudoInstructions:
    def test_nop(self):
        ins = assemble("nop\n").instructions[0]
        assert ins.op == "addi" and ins.rd == 0

    def test_mv(self):
        ins = assemble("mv t0, t1\n").instructions[0]
        assert ins.op == "addi" and ins.rd == 5 and ins.rs1 == 6

    def test_j_call_ret(self):
        prog = assemble("x:\nj x\ncall x\nret\n")
        j, call, ret = prog.instructions
        assert j.op == "jal" and j.rd == 0
        assert call.op == "jal" and call.rd == 1
        assert ret.op == "jalr" and ret.rd == 0 and ret.rs1 == 1

    def test_la(self):
        prog = assemble(".data\nv: .word 7\n.text\nla t0, v\n")
        assert prog.instructions[0].op == "li"
        assert prog.instructions[0].imm == DATA_BASE

    def test_branch_zero_forms(self):
        prog = assemble("x:\nbeqz t0, x\nbnez t0, x\nbltz t0, x\n"
                        "bgez t0, x\nblez t0, x\nbgtz t0, x\n")
        ops = [i.op for i in prog.instructions]
        assert ops == ["beq", "bne", "blt", "bge", "bge", "blt"]

    def test_bgt_ble_swap_operands(self):
        prog = assemble("x:\nbgt t0, t1, x\nble t0, t1, x\n")
        bgt, ble = prog.instructions
        assert bgt.op == "blt" and bgt.rs1 == 6 and bgt.rs2 == 5
        assert ble.op == "bge" and ble.rs1 == 6 and ble.rs2 == 5

    def test_not_neg_seqz_snez(self):
        prog = assemble("not t0, t1\nneg t0, t1\nseqz t0, t1\n"
                        "snez t0, t1\n")
        ops = [i.op for i in prog.instructions]
        assert ops == ["xori", "sub", "sltiu", "sltu"]


class TestDataSection:
    def test_word_layout(self):
        prog = assemble("""
        .data
        a: .word 1, 2, 3
        b: .word 4
        .text
        nop
        """)
        assert prog.symbols["a"] == DATA_BASE
        assert prog.symbols["b"] == DATA_BASE + 12
        assert prog.data[0] == (DATA_BASE, [1, 2, 3])

    def test_space_rounds_to_words(self):
        prog = assemble("""
        .data
        a: .space 5
        b: .word 1
        .text
        nop
        """)
        assert prog.symbols["b"] == DATA_BASE + 8

    def test_float_directive(self):
        prog = assemble(".data\nf: .float 1.5\n.text\nnop\n")
        addr, words = prog.data[0]
        assert bits_to_float(words[0]) == 1.5

    def test_negative_word_wraps(self):
        prog = assemble(".data\nv: .word -1\n.text\nnop\n")
        assert prog.data[0][1] == [0xFFFFFFFF]

    def test_align(self):
        prog = assemble("""
        .data
        a: .word 1
        .align 4
        b: .word 2
        .text
        nop
        """)
        assert prog.symbols["b"] % 16 == 0


class TestErrors:
    @pytest.mark.parametrize("src,fragment", [
        ("bogus x1, x2\n", "unknown instruction"),
        ("add x1, x2\n", "expects 3"),
        ("lw x1, x2\n", "offset(base)"),
        ("j nowhere\n", "undefined label"),
        ("x: nop\nx: nop\n", "duplicate label"),
        (".word 5\n", "outside .data"),
        ("addi x1, x2, zz\n", "invalid integer"),
        (".data\nnop\n", "outside .text"),
        (".bogus\n", "unknown directive"),
        ("add q1, x2, x3\n", "invalid register"),
    ])
    def test_error_messages(self, src, fragment):
        with pytest.raises(AssemblerError) as excinfo:
            assemble(src)
        assert fragment in str(excinfo.value)

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("nop\nnop\nbogus\n")
        assert excinfo.value.line == 3


class TestFloatBits:
    def test_roundtrip(self):
        for value in (0.0, 1.0, -2.5, 3.14159, 1e-8, -1e8):
            got = bits_to_float(float_to_bits(value))
            assert got == pytest.approx(value, rel=1e-6)
