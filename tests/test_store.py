"""Tests for the sharded result store: the recency index, LRU garbage
collection, read-through roots, legacy flat-layout migration, and the
``repro cache`` CLI over both layouts."""

import json
import os

import pytest

from repro.engine import ResultStore, SimJob, StoreIndex
from repro.cli import main

#: Fabricated 64-hex keys (content is irrelevant to store mechanics).
K1 = "a" * 64
K2 = "b" * 64
K3 = "ab" + "c" * 62


def fake_job(workload="gap.bfs", seed=0, cap=8000):
    return SimJob(workload=workload, technique="conv", scale="tiny",
                  seed=seed, max_instructions=cap)


def plant_blob(store, key, payload=None, flat=False):
    """Write a well-formed blob for ``key`` directly (no simulation),
    optionally in the legacy flat location, bypassing the index."""
    path = (store.flat_path_for(key) if flat
            else store.path_for(key))
    os.makedirs(os.path.dirname(path), exist_ok=True)
    blob = {"key": key, "job": {}, "result": payload or {"ipc": 1.0}}
    with open(path, "w") as fh:
        json.dump(blob, fh)
    return path


class TestStoreIndex:
    def test_put_order_is_lru_order(self, tmp_path):
        index = StoreIndex(str(tmp_path / "index.jsonl"))
        index.put(K1, 10)
        index.put(K2, 20)
        assert list(index.load().items()) == [(K1, 10), (K2, 20)]

    def test_touch_moves_to_most_recent(self, tmp_path):
        index = StoreIndex(str(tmp_path / "index.jsonl"))
        index.put(K1, 10)
        index.put(K2, 20)
        index.touch(K1)
        assert list(index.load()) == [K2, K1]

    def test_touch_of_unknown_key_is_ignored(self, tmp_path):
        index = StoreIndex(str(tmp_path / "index.jsonl"))
        index.touch(K1)
        assert index.load() == {}

    def test_drop_removes(self, tmp_path):
        index = StoreIndex(str(tmp_path / "index.jsonl"))
        index.put(K1, 10)
        index.drop(K1)
        assert index.load() == {}

    def test_re_put_updates_size_and_recency(self, tmp_path):
        index = StoreIndex(str(tmp_path / "index.jsonl"))
        index.put(K1, 10)
        index.put(K2, 20)
        index.put(K1, 30)
        assert list(index.load().items()) == [(K2, 20), (K1, 30)]

    def test_garbage_records_are_skipped(self, tmp_path):
        path = tmp_path / "index.jsonl"
        index = StoreIndex(str(path))
        index.put(K1, 10)
        with open(path, "a") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"op": "put", "key": "short"}) + "\n")
            fh.write(json.dumps({"op": "warp", "key": K2}) + "\n")
        assert index.load() == {K1: 10}

    def test_rewrite_compacts(self, tmp_path):
        path = tmp_path / "index.jsonl"
        index = StoreIndex(str(path))
        for _ in range(5):
            index.put(K1, 10)
            index.touch(K1)
        index.rewrite(index.load())
        with open(path) as fh:
            assert len(fh.readlines()) == 1

    def test_missing_file_loads_empty(self, tmp_path):
        assert StoreIndex(str(tmp_path / "absent.jsonl")).load() == {}

    def test_entries_iterates_lru_order(self, tmp_path):
        index = StoreIndex(str(tmp_path / "index.jsonl"))
        index.put(K1, 10)
        index.put(K2, 20)
        index.touch(K1)
        index.put(K3, 5)
        assert list(index.entries()) == [(K2, 20), (K1, 10), (K3, 5)]

    def test_entries_matches_load(self, tmp_path):
        index = StoreIndex(str(tmp_path / "index.jsonl"))
        index.put(K1, 10)
        index.drop(K1)
        index.put(K2, 7)
        assert dict(index.entries()) == index.load()

    def test_entries_of_missing_file_is_empty(self, tmp_path):
        assert list(StoreIndex(str(tmp_path / "nope.jsonl")).entries()) \
            == []

    def test_concurrent_multiprocess_puts_never_tear(self, tmp_path):
        """4 processes hammering one index concurrently must leave a
        log whose folded view (entries()) sees every key exactly once
        with its final size — the single-write O_APPEND contract,
        this time through the StoreIndex record vocabulary."""
        import subprocess
        import sys
        path = str(tmp_path / "index.jsonl")
        script = (
            "import sys\n"
            "from repro.engine.store import StoreIndex\n"
            "path, worker = sys.argv[1], int(sys.argv[2])\n"
            "index = StoreIndex(path)\n"
            "for i in range(100):\n"
            "    key = f'{worker:02x}{i:04x}'.ljust(64, 'e')\n"
            "    index.put(key, worker * 1000 + i)\n"
            "    index.touch(key)\n"
        )
        procs = [subprocess.Popen([sys.executable, "-c", script,
                                   path, str(w)],
                                  env={**os.environ, "PYTHONPATH": "src"})
                 for w in range(4)]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        entries = dict(StoreIndex(path).entries())
        assert len(entries) == 4 * 100
        for worker in range(4):
            for i in range(100):
                key = f"{worker:02x}{i:04x}".ljust(64, "e")
                assert entries[key] == worker * 1000 + i
        # Raw log: every line parses (no torn writes), 2 per put+touch.
        with open(path) as fh:
            lines = [json.loads(line) for line in fh]
        assert len(lines) == 4 * 100 * 2


class TestShardedLayout:
    def test_blob_lands_in_shard_dir(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = fake_job()
        store.put_payload(job, {"x": 1})
        assert os.path.exists(
            tmp_path / job.key[:2] / f"{job.key}.json")
        assert store.get_payload(job) == {"x": 1}

    def test_put_indexes(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = fake_job()
        store.put_payload(job, {"x": 1})
        assert job.key in store.index.load()

    def test_stats_shape(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put_payload(fake_job(seed=1), {"x": 1})
        store.put_payload(fake_job(seed=2), {"x": 2})
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert stats["shards_max"] == 256
        assert 1 <= stats["shards_used"] <= 2
        assert stats["flat_entries"] == 0
        assert stats["indexed"] == 2


class TestGC:
    def test_evicts_lru_first(self, tmp_path):
        store = ResultStore(str(tmp_path))
        jobs = [fake_job(seed=s) for s in (1, 2, 3)]
        for job in jobs:
            store.put_payload(job, {"seed": job.seed})
        store.get_payload(jobs[0])      # touch: jobs[0] now MRU
        sizes = store._scan()
        keep = sizes[jobs[0].key] + sizes[jobs[2].key]
        summary = store.gc(max_bytes=keep)
        assert summary["evicted"] == 1
        assert store.get_payload(jobs[1]) is None       # LRU went
        assert store.get_payload(jobs[0]) is not None
        assert store.get_payload(jobs[2]) is not None

    def test_gc_noop_when_under_budget(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put_payload(fake_job(), {"x": 1})
        summary = store.gc(max_bytes=10**9)
        assert summary["evicted"] == 0
        assert summary["kept"] == 1

    def test_gc_to_zero_empties_store(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for s in (1, 2):
            store.put_payload(fake_job(seed=s), {"x": s})
        summary = store.gc(max_bytes=0)
        assert summary["kept"] == 0
        assert len(store) == 0
        assert store.index.load() == {}

    def test_unindexed_blobs_evict_before_indexed(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = fake_job()
        store.put_payload(job, {"x": 1})        # indexed
        plant_blob(store, K1)                   # never indexed
        sizes = store._scan()
        summary = store.gc(max_bytes=sizes[job.key])
        assert summary["evicted"] == 1
        assert store.get_payload(job) is not None
        assert not os.path.exists(store.path_for(K1))

    def test_gc_works_on_flat_layout(self, tmp_path):
        store = ResultStore(str(tmp_path))
        plant_blob(store, K1, flat=True)
        plant_blob(store, K2, flat=True)
        summary = store.gc(max_bytes=0)
        assert summary["evicted"] == 2
        assert len(store) == 0

    def test_reindex_recovers_lost_index(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for s in (1, 2):
            store.put_payload(fake_job(seed=s), {"x": s})
        os.unlink(store.index.path)
        assert store.reindex() == 2
        assert len(store.index.load()) == 2


class TestReadThrough:
    def test_miss_reads_through_and_localizes(self, tmp_path):
        warm = ResultStore(str(tmp_path / "warm"))
        job = fake_job()
        warm.put_payload(job, {"x": 42})
        local = ResultStore(str(tmp_path / "local"),
                            read_roots=[str(tmp_path / "warm")])
        assert local.get_payload(job) == {"x": 42}
        # Localized: a second read no longer needs the warm root.
        alone = ResultStore(str(tmp_path / "local"), read_roots=[])
        assert alone.get_payload(job) == {"x": 42}

    def test_read_root_flat_blob_resolves(self, tmp_path):
        warm = ResultStore(str(tmp_path / "warm"))
        job = fake_job()
        plant_blob(warm, job.key, payload={"x": 7}, flat=True)
        local = ResultStore(str(tmp_path / "local"),
                            read_roots=[str(tmp_path / "warm")])
        assert local.get_payload(job) == {"x": 7}

    def test_read_roots_never_written(self, tmp_path):
        warm = ResultStore(str(tmp_path / "warm"))
        local = ResultStore(str(tmp_path / "local"),
                            read_roots=[str(tmp_path / "warm")])
        job = fake_job()
        local.put_payload(job, {"x": 1})
        assert warm.get_payload(job) is None

    def test_env_read_roots(self, tmp_path, monkeypatch):
        roots = os.pathsep.join([str(tmp_path / "a"), str(tmp_path / "b")])
        monkeypatch.setenv("REPRO_CACHE_READ_ROOTS", roots)
        store = ResultStore(str(tmp_path / "local"))
        assert store.read_roots == [str(tmp_path / "a"),
                                    str(tmp_path / "b")]

    def test_primary_root_excluded_from_read_roots(self, tmp_path):
        store = ResultStore(str(tmp_path),
                            read_roots=[str(tmp_path)])
        assert store.read_roots == []


class TestFlatMigration:
    def test_flat_blob_reads_as_hit_and_migrates(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = fake_job()
        plant_blob(store, job.key, payload={"x": 5}, flat=True)
        assert store.get_payload(job) == {"x": 5}
        assert not os.path.exists(store.flat_path_for(job.key))
        assert os.path.exists(store.path_for(job.key))
        assert job.key in store.index.load()

    def test_bulk_migrate(self, tmp_path):
        store = ResultStore(str(tmp_path))
        plant_blob(store, K1, flat=True)
        plant_blob(store, K2, flat=True)
        assert store.migrate_flat() == 2
        assert store.stats()["flat_entries"] == 0
        assert sorted(store.keys()) == sorted([K1, K2])

    def test_migrate_on_empty_store(self, tmp_path):
        assert ResultStore(str(tmp_path / "absent")).migrate_flat() == 0


class TestMixedLayoutOps:
    def test_len_keys_count_both_layouts(self, tmp_path):
        store = ResultStore(str(tmp_path))
        plant_blob(store, K1, flat=True)
        plant_blob(store, K3)
        assert len(store) == 2
        assert sorted(store.keys()) == sorted([K1, K3])

    def test_invalidate_flat_blob(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = fake_job()
        plant_blob(store, job.key, flat=True)
        assert store.invalidate(job)
        assert store.get_payload(job) is None

    def test_clear_drops_both_layouts(self, tmp_path):
        store = ResultStore(str(tmp_path))
        plant_blob(store, K1, flat=True)
        plant_blob(store, K2)
        assert store.clear() == 2
        assert len(store) == 0


class TestCacheCLI:
    def test_stats(self, tmp_path, capsys):
        store = ResultStore(str(tmp_path))
        store.put_payload(fake_job(), {"x": 1})
        assert main(["cache", "stats",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "1" in out

    def test_gc_requires_max_bytes(self, tmp_path, capsys):
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 1
        assert "--max-bytes" in capsys.readouterr().err

    def test_gc_evicts(self, tmp_path, capsys):
        store = ResultStore(str(tmp_path))
        store.put_payload(fake_job(), {"x": 1})
        assert main(["cache", "gc", "--max-bytes", "0",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "evicted 1" in capsys.readouterr().out
        assert len(store) == 0

    def test_migrate(self, tmp_path, capsys):
        store = ResultStore(str(tmp_path))
        plant_blob(store, K1, flat=True)
        assert main(["cache", "migrate",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "migrated 1" in capsys.readouterr().out

    def test_stats_on_flat_layout(self, tmp_path, capsys):
        store = ResultStore(str(tmp_path))
        plant_blob(store, K1, flat=True)
        assert main(["cache", "stats",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "1" in capsys.readouterr().out


class TestEngineIntegration:
    def test_engine_hit_through_sharded_store(self, tmp_path):
        from repro.engine import ExperimentEngine
        engine = ExperimentEngine(store=ResultStore(str(tmp_path)),
                                  jobs=1)
        job = fake_job(cap=6000)
        first = engine.run([job])[0]
        second = engine.run([job])[0]
        assert first.status == "ok" and second.status == "hit"
        a, b = first.result.to_dict(), second.result.to_dict()
        assert a == b   # hit serves the exact stored payload
