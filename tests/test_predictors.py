"""Unit tests for branch predictors and the composite unit."""

import pytest

from repro.branch.predictors import (BimodalPredictor, BranchPredictorUnit,
                                     GSharePredictor, IndirectPredictor,
                                     ReturnAddressStack,
                                     TournamentPredictor)
from repro.isa.instructions import Instruction


def branch_at(pc, target=0x2000):
    ins = Instruction("beq", rs1=1, rs2=2, target=target)
    ins.pc = pc
    return ins


def jalr_at(pc, rd=0, rs1=1, imm=0):
    ins = Instruction("jalr", rd=rd, rs1=rs1, imm=imm)
    ins.pc = pc
    return ins


def jal_at(pc, rd=1, target=0x3000):
    ins = Instruction("jal", rd=rd, target=target)
    ins.pc = pc
    return ins


class TestBimodal:
    def test_learns_taken(self):
        predictor = BimodalPredictor(table_bits=4)
        for _ in range(3):
            predictor.update(0x1000, True)
        assert predictor.predict(0x1000)

    def test_learns_not_taken(self):
        predictor = BimodalPredictor(table_bits=4)
        for _ in range(3):
            predictor.update(0x1000, False)
        assert not predictor.predict(0x1000)

    def test_hysteresis(self):
        predictor = BimodalPredictor(table_bits=4)
        for _ in range(4):
            predictor.update(0x1000, True)
        predictor.update(0x1000, False)  # one anomaly
        assert predictor.predict(0x1000)  # still predicts taken


class TestGShare:
    def test_history_disambiguates_pattern(self):
        predictor = GSharePredictor(table_bits=10, history_bits=4)
        # Alternating pattern TNTN...: bimodal can't learn it, gshare can.
        for _ in range(64):
            taken = (predictor.history & 1) == 0
            predictor.update(0x1000, taken)
        correct = 0
        for _ in range(32):
            taken = (predictor.history & 1) == 0
            correct += predictor.predict(0x1000) == taken
            predictor.update(0x1000, taken)
        assert correct >= 30

    def test_peek_with_history_override(self):
        predictor = GSharePredictor(table_bits=6, history_bits=4)
        before = list(predictor.table)
        predictor.predict(0x1000, history=0xF)
        assert predictor.table == before  # predict never mutates


class TestTournament:
    def test_chooser_picks_working_component(self):
        predictor = TournamentPredictor(table_bits=10, history_bits=6)
        for _ in range(200):
            taken = (predictor.history & 1) == 0
            predictor.update(0x40, taken)
        correct = sum(
            predictor.predict(0x40) == ((predictor.history & 1) == 0)
            or predictor.update(0x40, (predictor.history & 1) == 0)
            for _ in range(1))
        # At minimum the predictor remains functional and deterministic.
        assert isinstance(correct, int)


class TestRAS:
    def test_lifo(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        for addr in (1, 2, 3):
            ras.push(addr)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None


class TestIndirect:
    def test_last_target(self):
        predictor = IndirectPredictor(table_bits=6)
        assert predictor.predict(0x1000, 0) is None
        predictor.update(0x1000, 0, 0x4000)
        assert predictor.predict(0x1000, 0) == 0x4000


class TestBranchPredictorUnit:
    def test_conditional_mispredict_detected(self):
        bpu = BranchPredictorUnit(kind="bimodal", table_bits=8)
        ins = branch_at(0x1000)
        # Fresh counters are weakly taken: prediction = target.
        pred = bpu.predict_and_update(ins, taken=False,
                                      next_pc=ins.fall_through)
        assert pred == ins.target
        assert bpu.cond_mispredicts == 1

    def test_learns_and_stops_mispredicting(self):
        bpu = BranchPredictorUnit(kind="bimodal", table_bits=8)
        ins = branch_at(0x1000)
        for _ in range(8):
            bpu.predict_and_update(ins, taken=False,
                                   next_pc=ins.fall_through)
        before = bpu.cond_mispredicts
        bpu.predict_and_update(ins, taken=False, next_pc=ins.fall_through)
        assert bpu.cond_mispredicts == before

    def test_direct_jump_never_mispredicts(self):
        bpu = BranchPredictorUnit()
        ins = jal_at(0x1000, rd=0)
        pred = bpu.predict_and_update(ins, taken=True, next_pc=0x3000)
        assert pred == 0x3000
        assert bpu.mispredicts == 0

    def test_return_uses_ras(self):
        bpu = BranchPredictorUnit()
        call = jal_at(0x1000, rd=1, target=0x3000)
        bpu.predict_and_update(call, taken=True, next_pc=0x3000)
        ret = jalr_at(0x3000)
        pred = bpu.predict_and_update(ret, taken=True, next_pc=0x1004)
        assert pred == 0x1004
        assert bpu.indirect_mispredicts == 0

    def test_indirect_learns_target(self):
        bpu = BranchPredictorUnit()
        ins = jalr_at(0x1000, rd=0, rs1=5)
        bpu.predict_and_update(ins, taken=True, next_pc=0x5000)
        pred = bpu.predict_and_update(ins, taken=True, next_pc=0x5000)
        assert pred == 0x5000

    def test_two_units_stay_in_lockstep(self):
        """The wpemul predictor-copy invariant: identical call sequences
        produce identical predictions."""
        import random
        rng = random.Random(7)
        a = BranchPredictorUnit(kind="tournament", table_bits=8,
                                history_bits=6)
        b = BranchPredictorUnit(kind="tournament", table_bits=8,
                                history_bits=6)
        branches = [branch_at(0x1000 + 16 * i, target=0x8000 + 64 * i)
                    for i in range(5)]
        for _ in range(500):
            ins = rng.choice(branches)
            taken = rng.random() < 0.6
            next_pc = ins.target if taken else ins.fall_through
            assert a.predict_and_update(ins, taken, next_pc) == \
                b.predict_and_update(ins, taken, next_pc)
        assert a.cond_mispredicts == b.cond_mispredicts

    def test_peek_does_not_mutate(self):
        bpu = BranchPredictorUnit(kind="gshare", table_bits=8,
                                  history_bits=6)
        ins = branch_at(0x1000)
        bpu.predict_and_update(ins, taken=True, next_pc=ins.target)
        table_before = list(bpu.direction.table)
        history_before = bpu.direction.history
        spec = bpu.speculative_state()
        for _ in range(10):
            bpu.peek_next(ins, spec)
        assert bpu.direction.table == table_before
        assert bpu.direction.history == history_before

    def test_peek_updates_spec_history(self):
        bpu = BranchPredictorUnit(kind="gshare", table_bits=8,
                                  history_bits=6)
        ins = branch_at(0x1000)
        spec = bpu.speculative_state()
        initial = spec.history
        bpu.peek_next(ins, spec)
        assert spec.history != initial or initial == \
            ((initial << 1) | 1) & 0x3F

    def test_peek_return_pops_spec_ras_only(self):
        bpu = BranchPredictorUnit()
        call = jal_at(0x1000, rd=1)
        bpu.predict_and_update(call, taken=True, next_pc=0x3000)
        spec = bpu.speculative_state()
        ret = jalr_at(0x3000)
        assert bpu.peek_next(ret, spec) == 0x1004
        assert bpu.peek_next(ret, spec) is None  # spec RAS now empty
        assert len(bpu.ras) == 1  # real RAS untouched

    def test_peek_unseen_indirect_returns_none(self):
        bpu = BranchPredictorUnit()
        spec = bpu.speculative_state()
        ins = jalr_at(0x1000, rd=0, rs1=5)
        assert bpu.peek_next(ins, spec) is None

    def test_mpki(self):
        bpu = BranchPredictorUnit()
        bpu.cond_mispredicts = 5
        assert bpu.mpki(1000) == 5.0
        assert bpu.mpki(0) == 0.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BranchPredictorUnit(kind="tage9000")
