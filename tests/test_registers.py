"""Unit tests for register naming and indices."""

import pytest

from repro.isa.registers import (NUM_INT_REGS, NUM_REGS, RegisterError,
                                 is_fp_register, parse_register,
                                 register_name)


class TestParseRegister:
    def test_raw_integer_names(self):
        assert parse_register("x0") == 0
        assert parse_register("x31") == 31

    def test_raw_fp_names(self):
        assert parse_register("f0") == 32
        assert parse_register("f31") == 63

    def test_abi_names(self):
        assert parse_register("zero") == 0
        assert parse_register("ra") == 1
        assert parse_register("sp") == 2
        assert parse_register("a0") == 10
        assert parse_register("a7") == 17
        assert parse_register("t0") == 5
        assert parse_register("t6") == 31
        assert parse_register("s0") == 8
        assert parse_register("fp") == 8
        assert parse_register("s11") == 27

    def test_abi_fp_names(self):
        assert parse_register("ft0") == 32
        assert parse_register("fa0") == 42
        assert parse_register("fs11") == 59
        assert parse_register("ft11") == 63

    def test_case_insensitive(self):
        assert parse_register("A0") == 10
        assert parse_register("X5") == 5

    def test_whitespace_stripped(self):
        assert parse_register("  t1 ") == 6

    @pytest.mark.parametrize("bad", ["x32", "f32", "x-1", "q3", "", "x",
                                     "a8", "t7", "s12"])
    def test_invalid_names(self, bad):
        with pytest.raises(RegisterError):
            parse_register(bad)


class TestRegisterName:
    def test_roundtrip_all(self):
        for reg in range(NUM_REGS):
            assert parse_register(register_name(reg)) == reg

    def test_out_of_range(self):
        with pytest.raises(RegisterError):
            register_name(NUM_REGS)
        with pytest.raises(RegisterError):
            register_name(-1)


class TestIsFp:
    def test_boundaries(self):
        assert not is_fp_register(0)
        assert not is_fp_register(NUM_INT_REGS - 1)
        assert is_fp_register(NUM_INT_REGS)
        assert is_fp_register(NUM_REGS - 1)
