"""Unit tests for the wrong-path models: reconstruction walking, the shared
pipeline executor, and per-technique behaviour."""

import pytest

from repro.branch.predictors import BranchPredictorUnit
from repro.cache.hierarchy import CacheHierarchy
from repro.core.config import CoreConfig
from repro.core.ooo import OoOCore, WrongPathWindow
from repro.frontend.dyninstr import DynInstr
from repro.isa.instructions import Instruction
from repro.wrongpath.base import (WPItem, reconstruct_from_code_cache,
                                  simulate_wrong_path_stream)
from repro.wrongpath.instrec import InstructionReconstruction
from repro.wrongpath.nowp import NoWrongPath


def make_core(cfg=None, model=None):
    cfg = cfg or CoreConfig()
    return OoOCore(cfg, CacheHierarchy.from_config(cfg),
                   BranchPredictorUnit(), model or NoWrongPath())


def seed_code_cache(core, ops, base=0x1000):
    """Insert a straight-line code region into the code cache."""
    instrs = []
    for i, op in enumerate(ops):
        if op == "lw":
            ins = Instruction("lw", rd=1, rs1=2, imm=0)
        elif op == "beq":
            ins = Instruction("beq", rs1=1, rs2=2, target=base)
        else:
            ins = Instruction(op, rd=1, rs1=2, rs2=3)
        ins.pc = base + 4 * i
        core.code_cache.insert(ins)
        instrs.append(ins)
    return instrs


def branch_window(core, wrong_pc, start=10, resolution=400, limit=64):
    ins = Instruction("beq", rs1=1, rs2=2, target=0x9000)
    ins.pc = 0x900
    di = DynInstr(0, ins, 0x900, 0x904, False, None)
    return WrongPathWindow(core, di, wrong_pc, start, resolution, limit)


class TestReconstruction:
    def test_walks_straight_line(self):
        core = make_core()
        seed_code_cache(core, ["add"] * 8)
        items = reconstruct_from_code_cache(core, 0x1000, 8)
        assert [it.pc for it in items] == [0x1000 + 4 * i
                                           for i in range(8)]
        assert all(it.mem_addr is None for it in items)

    def test_stops_at_code_cache_miss(self):
        core = make_core()
        seed_code_cache(core, ["add"] * 4)
        items = reconstruct_from_code_cache(core, 0x1000, 100)
        assert len(items) == 4
        assert core.stats.wp_stop_code_cache == 1

    def test_respects_limit(self):
        core = make_core()
        seed_code_cache(core, ["add"] * 32)
        assert len(reconstruct_from_code_cache(core, 0x1000, 5)) == 5

    def test_follows_predicted_branch(self):
        core = make_core()
        # beq at 0x1000 targeting 0x1000 (self-loop); fresh predictor is
        # weakly taken, so the walk loops at 0x1000.
        seed_code_cache(core, ["beq"])
        items = reconstruct_from_code_cache(core, 0x1000, 6)
        assert [it.pc for it in items] == [0x1000] * 6

    def test_stops_on_unpredictable_indirect(self):
        core = make_core()
        jalr = Instruction("jalr", rd=0, rs1=5, imm=0)
        jalr.pc = 0x1000
        core.code_cache.insert(jalr)
        items = reconstruct_from_code_cache(core, 0x1000, 10)
        assert len(items) == 1
        assert core.stats.wp_stop_prediction == 1


class TestExecutor:
    def test_counts_fetched_and_executed(self):
        core = make_core()
        instrs = seed_code_cache(core, ["add"] * 16)
        window = branch_window(core, 0x1000, resolution=1000)
        items = [WPItem(ins, ins.pc) for ins in instrs]
        simulate_wrong_path_stream(window, items)
        assert core.stats.wp_fetched == 16
        assert core.stats.wp_executed == 16  # huge window: all complete

    def test_short_window_executes_fewer(self):
        core = make_core()
        instrs = seed_code_cache(core, ["add"] * 64)
        window = branch_window(core, 0x1000, start=10, resolution=14,
                               limit=64)
        items = [WPItem(ins, ins.pc) for ins in instrs]
        simulate_wrong_path_stream(window, items)
        assert core.stats.wp_fetched < 64
        assert core.stats.wp_executed == 0  # frontend depth > window

    def test_known_address_loads_touch_cache(self):
        core = make_core()
        instrs = seed_code_cache(core, ["lw"] * 4)
        window = branch_window(core, 0x1000, resolution=5000)
        items = [WPItem(ins, ins.pc, 0x40000 + 64 * i)
                 for i, ins in enumerate(instrs)]
        simulate_wrong_path_stream(window, items)
        assert core.hierarchy.l1d.stats.wp_accesses == 4
        assert core.hierarchy.l1d.contains(0x40000)
        assert core.stats.wp_loads_with_addr == 4

    def test_unknown_address_loads_skip_cache(self):
        core = make_core()
        instrs = seed_code_cache(core, ["lw"] * 4)
        window = branch_window(core, 0x1000, resolution=5000)
        simulate_wrong_path_stream(
            window, [WPItem(ins, ins.pc) for ins in instrs])
        assert core.hierarchy.l1d.stats.wp_accesses == 0
        assert core.stats.wp_loads == 4

    def test_ports_restored_after_window(self):
        core = make_core()
        instrs = seed_code_cache(core, ["add"] * 32)
        before = core.ports.snapshot()
        window = branch_window(core, 0x1000, resolution=5000)
        simulate_wrong_path_stream(
            window, [WPItem(ins, ins.pc) for ins in instrs])
        assert core.ports.snapshot() == before

    def test_wp_stores_never_touch_cache(self):
        core = make_core()
        store = Instruction("sw", rs1=2, rs2=3, imm=0)
        store.pc = 0x1000
        core.code_cache.insert(store)
        window = branch_window(core, 0x1000, resolution=5000)
        simulate_wrong_path_stream(window,
                                   [WPItem(store, 0x1000, 0x40000)])
        assert core.hierarchy.l1d.stats.wp_accesses == 0
        assert core.stats.wp_stores == 1

    def test_rob_limit_caps_fetch(self):
        core = make_core()
        instrs = seed_code_cache(core, ["add"] * 64)
        window = branch_window(core, 0x1000, resolution=5000, limit=10)
        simulate_wrong_path_stream(
            window, [WPItem(ins, ins.pc) for ins in instrs])
        assert core.stats.wp_fetched == 10

    def test_icache_touched_by_wp_fetch(self):
        core = make_core()
        instrs = seed_code_cache(core, ["add"] * 4, base=0x40000)
        window = branch_window(core, 0x40000, resolution=5000)
        simulate_wrong_path_stream(
            window, [WPItem(ins, ins.pc) for ins in instrs])
        assert core.hierarchy.l1i.stats.wp_accesses >= 1

    def test_dependence_chain_delays_execution(self):
        """Chained wrong-path loads deeper than the window never touch the
        cache (the runahead-depth bound)."""
        cfg = CoreConfig()
        core = make_core(cfg)
        # Loads where each depends on the previous result (rs1 = rd).
        items = []
        for i in range(8):
            ins = Instruction("lw", rd=1, rs1=1, imm=0)
            ins.pc = 0x1000 + 4 * i
            items.append(WPItem(ins, ins.pc, 0x800000 + 8192 * i))
        window = branch_window(core, 0x1000, start=10,
                               resolution=10 + 2 * cfg.mem_latency)
        simulate_wrong_path_stream(window, items)
        # First loads issue; deep ones (5+ memory latencies in) cannot.
        touched = core.hierarchy.l1d.stats.wp_accesses
        assert 1 <= touched < 8


class TestNoWrongPath:
    def test_does_nothing(self):
        core = make_core()
        window = branch_window(core, 0x1000)
        NoWrongPath().on_mispredict(window)
        assert core.stats.wp_fetched == 0


class TestInstrecModel:
    def test_reconstructs_and_simulates(self):
        model = InstructionReconstruction()
        core = make_core(model=model)
        seed_code_cache(core, ["add"] * 8)
        window = branch_window(core, 0x1000, resolution=2000)
        model.on_mispredict(window)
        assert core.stats.wp_fetched == 8

    def test_cold_code_cache_falls_back(self):
        model = InstructionReconstruction()
        core = make_core(model=model)
        window = branch_window(core, 0xDEAD000)
        model.on_mispredict(window)
        assert core.stats.wp_fetched == 0
        assert core.stats.wp_stop_code_cache == 1
