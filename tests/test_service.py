"""Tests for the sweep daemon: the wire protocol, the deduplicating
async scheduler (with a scripted fake pool), the daemon end-to-end over
its Unix socket and HTTP front, and the CLI's transparent fallback to
the embedded engine."""

import asyncio
import json
import socket as socketlib
import threading
import urllib.error
import urllib.request
from collections import Counter
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.cli import main
from repro.engine import ResultStore, RunJournal, SimJob, job_to_transport
from repro.service import (ServiceClient, ServiceDaemon, ServiceError,
                           ServiceUnavailable, Scheduler, connect_or_none)
from repro.service import protocol

#: Small fast job: ~6k instructions, well under a second.
JOB = SimJob(workload="gap.bfs", technique="conv", scale="tiny",
             max_instructions=6000)
JOB2 = SimJob(workload="gap.bfs", technique="nowp", scale="tiny",
              max_instructions=6000)

PAYLOAD = {"ipc": 1.0, "wall_seconds": 0.0}


def _stats_without_wall(payload):
    data = dict(payload)
    data.pop("wall_seconds", None)
    return data


class TestProtocol:
    def test_round_trip(self):
        message = {"op": "ping", "id": 3, "nested": {"a": [1, 2]}}
        assert protocol.decode(protocol.encode(message)) == message

    def test_encode_is_one_line(self):
        line = protocol.encode({"op": "ping"})
        assert line.endswith(b"\n") and line.count(b"\n") == 1

    @pytest.mark.parametrize("junk", [b"not json\n", b"[1, 2]\n", b"3\n"])
    def test_decode_rejects_junk(self, junk):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(junk)

    def test_decode_rejects_oversize(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 16)
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b'{"op": "a very long message"}\n')

    @pytest.mark.parametrize("bad", [
        {"op": "warp"},
        {"op": "ping", "id": 1.5},
        {"op": "submit", "jobs": []},
        {"op": "submit", "jobs": "nope"},
        {"op": "submit", "jobs": [{"kind": 1, "job": {}}]},
        {"op": "submit", "jobs": [{"kind": "sim"}]},
        {"op": "submit", "jobs": [{"kind": "sim", "job": {}}],
         "fresh": "yes"},
        {"op": "cache", "action": "defrag"},
        {"op": "cache", "action": "gc"},
        {"op": "cache", "action": "gc", "max_bytes": "all"},
    ])
    def test_validate_rejects(self, bad):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_request(bad)

    def test_validate_accepts_submit(self):
        message = {"op": "submit", "id": 1,
                   "jobs": [job_to_transport(JOB)],
                   "fresh": False, "store": True}
        assert protocol.validate_request(message) is message

    def test_error_event_id_passthrough(self):
        assert protocol.error_event(7, "boom")["id"] == 7
        assert "id" not in protocol.error_event(None, "boom")


# -- scheduler with a scripted pool ------------------------------------------------


class ScriptedScheduler(Scheduler):
    """Scheduler whose 'pool' plays back a list of behaviours (one per
    submit) and whose pool replacement is a counter bump — no real
    worker processes involved."""

    def __init__(self, script, **kwargs):
        super().__init__(**kwargs)
        self.script = list(script)
        self.calls = 0

    def _submit_to_pool(self, job):
        self.calls += 1
        return self.script.pop(0)(job)

    def _replace_pool(self):
        self.counters["pool_replacements"] += 1


def ok_after(payload, delay=0.0):
    """Behaviour: resolve with ``payload`` after ``delay`` seconds."""
    def behave(job):
        future = Future()
        if delay:
            asyncio.get_running_loop().call_later(
                delay, future.set_result, payload)
        else:
            future.set_result(payload)
        return future
    return behave


def broken(job):
    """Behaviour: the worker died mid-attempt."""
    future = Future()
    future.set_exception(BrokenProcessPool("worker died"))
    return future


def stuck(job):
    """Behaviour: never resolves and cannot be cancelled (a running
    worker holding its slot)."""
    future = Future()
    future.set_running_or_notify_cancel()
    return future


def pending(job):
    """Behaviour: never resolves but still cancellable (queued)."""
    return Future()


class TestScheduler:
    def test_concurrent_twins_share_one_execution(self):
        async def go():
            sched = ScriptedScheduler([ok_after(PAYLOAD, delay=0.02)])
            first = asyncio.ensure_future(sched.submit(JOB))
            second = asyncio.ensure_future(sched.submit(JOB))
            return sched, await first, await second
        sched, a, b = asyncio.run(go())
        assert sched.calls == 1
        assert a["status"] == "ok" and b["status"] == "shared"
        assert a["result"] == b["result"] == PAYLOAD
        assert sched.counters["shared"] == 1

    def test_distinct_keys_do_not_share(self):
        async def go():
            sched = ScriptedScheduler([ok_after(PAYLOAD)] * 2)
            return sched, await asyncio.gather(sched.submit(JOB),
                                               sched.submit(JOB2))
        sched, outs = asyncio.run(go())
        assert sched.calls == 2
        assert [o["status"] for o in outs] == ["ok", "ok"]

    def test_store_hit_short_circuits_pool(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put_payload(JOB, PAYLOAD)
        async def go():
            sched = ScriptedScheduler([], store=store)
            return sched, await sched.submit(JOB)
        sched, out = asyncio.run(go())
        assert sched.calls == 0
        assert out["status"] == "hit" and out["cached"]
        assert out["result"] == PAYLOAD

    def test_fresh_bypasses_store_and_rewrites(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put_payload(JOB, {"ipc": 0.0, "wall_seconds": 0.0})
        async def go():
            sched = ScriptedScheduler([ok_after(PAYLOAD)], store=store)
            return sched, await sched.submit(JOB, fresh=True)
        sched, out = asyncio.run(go())
        assert sched.calls == 1 and out["status"] == "ok"
        assert store.get_payload(JOB) == PAYLOAD

    def test_broken_pool_is_replaced_and_retried(self, tmp_path):
        journal = RunJournal(str(tmp_path / "j.jsonl"))
        async def go():
            sched = ScriptedScheduler([broken, ok_after(PAYLOAD)],
                                      journal=journal, retries=1)
            return sched, await sched.submit(JOB)
        sched, out = asyncio.run(go())
        assert out["status"] == "ok" and out["attempts"] == 2
        assert sched.counters["pool_replacements"] == 1

    def test_budget_exhaustion_fails_the_job(self):
        async def go():
            sched = ScriptedScheduler([broken, broken], retries=1)
            return await sched.submit(JOB)
        out = asyncio.run(go())
        assert out["status"] == "failed" and out["attempts"] == 2
        assert "BrokenProcessPool" in out["error"]
        assert out["result"] is None

    def test_worker_exception_is_an_outcome(self):
        def exploding(job):
            future = Future()
            future.set_exception(ValueError("bad config"))
            return future
        async def go():
            sched = ScriptedScheduler([exploding], retries=0)
            return await sched.submit(JOB)
        out = asyncio.run(go())
        assert out["status"] == "failed"
        assert "ValueError" in out["error"]

    def test_stuck_worker_is_abandoned_then_retried(self, tmp_path):
        journal = RunJournal(str(tmp_path / "j.jsonl"))
        async def go():
            sched = ScriptedScheduler([stuck, ok_after(PAYLOAD)],
                                      journal=journal,
                                      timeout=0.05, retries=1)
            return sched, await sched.submit(JOB)
        sched, out = asyncio.run(go())
        assert out["status"] == "ok" and out["attempts"] == 2
        assert len(out["abandoned"]) == 1
        assert sched.counters["abandoned"] == 1
        assert sched.counters["pool_replacements"] == 1
        statuses = [e["status"] for e in journal.entries()]
        assert statuses == ["abandoned", "ok"]

    def test_cancellable_timeout_retries_without_abandoning(self):
        async def go():
            sched = ScriptedScheduler([pending, ok_after(PAYLOAD)],
                                      timeout=0.05, retries=1)
            return sched, await sched.submit(JOB)
        sched, out = asyncio.run(go())
        assert out["status"] == "ok" and out["attempts"] == 2
        assert out["abandoned"] == []
        assert sched.counters["pool_replacements"] == 0

    def test_journal_write_stays_off_the_event_loop(self, tmp_path):
        # Regression for the SC007 fix: journal appends go through
        # asyncio.to_thread, so a slow disk write stalls the one
        # submission, never the loop.
        journal = RunJournal(str(tmp_path / "j.jsonl"))
        release = threading.Event()
        original = journal.record

        def slow_record(**kwargs):
            release.wait(timeout=10)
            return original(**kwargs)

        journal.record = slow_record

        async def go():
            sched = ScriptedScheduler([ok_after(PAYLOAD)],
                                      journal=journal)
            task = asyncio.ensure_future(sched.submit(JOB))
            # While the write sits blocked in its worker thread, the
            # loop must keep turning and the submit must still be
            # pending on it.
            for _ in range(5):
                await asyncio.sleep(0.01)
            assert not task.done()
            release.set()
            return await task

        out = asyncio.run(go())
        assert out["status"] == "ok"
        assert [e["status"] for e in journal.entries()] == ["ok"]

    def test_journal_vocabulary(self, tmp_path):
        store = ResultStore(str(tmp_path))
        journal = RunJournal(store.journal_path)
        async def go():
            sched = ScriptedScheduler([ok_after(PAYLOAD, delay=0.02)],
                                      store=store, journal=journal)
            first = asyncio.ensure_future(sched.submit(JOB))
            second = asyncio.ensure_future(sched.submit(JOB))
            await asyncio.gather(first, second)
            await sched.submit(JOB)     # store hit now
        asyncio.run(go())
        statuses = Counter(e["status"] for e in journal.entries())
        assert statuses == {"ok": 1, "shared": 1, "hit": 1}


# -- live daemon over a Unix socket ------------------------------------------------


@pytest.fixture
def daemon(tmp_path):
    store = ResultStore(str(tmp_path / "cache"))
    d = ServiceDaemon(str(tmp_path / "d.sock"), store=store, workers=2)
    thread = d.start_in_thread()
    yield d
    d.request_stop()
    thread.join(timeout=10)
    assert not thread.is_alive()


@pytest.fixture(scope="module")
def live_result():
    """The embedded-path reference result for JOB."""
    return JOB.run()


class TestDaemon:
    def test_ping_and_status(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            assert client.ping()["version"] == protocol.PROTOCOL_VERSION
            stats = client.status()
            assert stats["counters"]["submitted"] == 0
            assert stats["socket"] == daemon.socket_path

    def test_submit_executes_then_hits(self, daemon, live_result):
        with ServiceClient(daemon.socket_path) as client:
            first = client.run_one(JOB)
            second = client.run_one(JOB)
        assert first.status == "ok" and not first.cached
        assert second.status == "hit" and second.cached
        # Daemon-path results are digest-identical to the embedded path.
        assert _stats_without_wall(first.result.to_dict()) == \
            _stats_without_wall(live_result.to_dict())
        assert second.result.to_dict() == first.result.to_dict()

    def test_two_concurrent_clients_one_execution(self, daemon):
        jobs = [JOB, JOB2]
        results = {}
        def worker(name):
            with ServiceClient(daemon.socket_path) as client:
                results[name] = client.run(jobs)
        threads = [threading.Thread(target=worker, args=(n,))
                   for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        # Both clients got full, identical result sets...
        assert set(results) == {"a", "b"}
        for name in results:
            assert [o.ok for o in results[name]] == [True, True]
        for a, b in zip(results["a"], results["b"]):
            assert a.result.to_dict() == b.result.to_dict()
        # A shared outcome counts as simulated in the CLI summary.
        from repro.engine import ExperimentEngine
        summary = ExperimentEngine.summarize(results["a"] + results["b"])
        assert summary["failed"] == 0
        assert summary["hits"] + summary["simulated"] == 4
        # ...and the journal proves each key executed exactly once.
        journal = RunJournal(daemon.scheduler.store.journal_path)
        executed = Counter(e["key"] for e in journal.entries()
                           if e["status"] == "ok")
        assert executed == {JOB.key: 1, JOB2.key: 1}

    def test_killed_worker_survives_without_dropping_client(self,
                                                            tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        d = ServiceDaemon(str(tmp_path / "k.sock"), store=store,
                          workers=1)
        original = d.scheduler._submit_to_pool
        state = {"killed": False}
        def flaky(job):
            if not state["killed"]:
                state["killed"] = True
                future = Future()
                future.set_exception(BrokenProcessPool("worker killed"))
                return future
            return original(job)
        d.scheduler._submit_to_pool = flaky
        thread = d.start_in_thread()
        try:
            with ServiceClient(d.socket_path) as client:
                outcome = client.run_one(JOB)
                assert outcome.status == "ok"
                assert outcome.attempts == 2
                # Same connection keeps working after the pool death.
                assert client.run_one(JOB).status == "hit"
            assert d.scheduler.counters["pool_replacements"] == 1
        finally:
            d.request_stop()
            thread.join(timeout=10)

    def test_bad_job_spec_is_an_error_event_not_a_disconnect(self,
                                                             daemon):
        with ServiceClient(daemon.socket_path) as client:
            request = client._request(
                {"op": "submit", "jobs": [{"kind": "warp", "job": {}}],
                 "fresh": False, "store": True})
            with pytest.raises(ServiceError, match="bad job spec"):
                next(request)
            # The connection survives the bad request.
            assert client.ping()["event"] == "pong"

    def test_unknown_op_is_an_error_event(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            with pytest.raises(ServiceError, match="unknown op"):
                client._one({"op": "defrag"})

    def test_cache_ops_over_the_wire(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            client.run_one(JOB)
            assert client.cache_stats()["entries"] == 1
            assert client.cache_migrate() == {"migrated": 0}
            summary = client.cache_gc(0)
            assert summary["evicted"] == 1 and summary["kept"] == 0

    def test_subscriber_streams_journal_records(self, daemon):
        sub = ServiceClient(daemon.socket_path, io_timeout=30.0)
        try:
            assert sub._one({"op": "subscribe"})["event"] == "subscribed"
            with ServiceClient(daemon.socket_path) as other:
                other.run_one(JOB)
            while True:
                event = sub._recv()
                if event.get("event") == "journal":
                    break
            assert event["record"]["key"] == JOB.key
            assert event["record"]["status"] == "ok"
        finally:
            sub.close()

    def test_shutdown_op_stops_daemon(self, tmp_path):
        d = ServiceDaemon(str(tmp_path / "s.sock"), store=None)
        thread = d.start_in_thread()
        ServiceClient(d.socket_path).shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert not (tmp_path / "s.sock").exists()

    def test_storeless_daemon_rejects_cache_ops(self, tmp_path):
        d = ServiceDaemon(str(tmp_path / "n.sock"), store=None)
        thread = d.start_in_thread()
        try:
            with ServiceClient(d.socket_path) as client:
                with pytest.raises(ServiceError, match="storeless"):
                    client.cache_stats()
        finally:
            d.request_stop()
            thread.join(timeout=10)

    def test_live_socket_refuses_second_daemon(self, daemon, tmp_path):
        rival = ServiceDaemon(daemon.socket_path, store=None)
        with pytest.raises(RuntimeError, match="already listening"):
            rival.start_in_thread()

    def test_stale_socket_file_is_reclaimed(self, tmp_path):
        path = str(tmp_path / "stale.sock")
        leftover = socketlib.socket(socketlib.AF_UNIX,
                                    socketlib.SOCK_STREAM)
        leftover.bind(path)
        leftover.close()        # file remains, nobody listens
        d = ServiceDaemon(path, store=None)
        thread = d.start_in_thread()
        try:
            with ServiceClient(path) as client:
                assert client.ping()["event"] == "pong"
        finally:
            d.request_stop()
            thread.join(timeout=10)


class TestHTTPFront:
    @pytest.fixture
    def http_daemon(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        d = ServiceDaemon(str(tmp_path / "h.sock"), store=store,
                          workers=2, http_port=0)
        thread = d.start_in_thread()
        yield d
        d.request_stop()
        thread.join(timeout=10)

    def _get(self, daemon, path):
        url = f"http://127.0.0.1:{daemon.http_bound}{path}"
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read())

    def test_healthz(self, http_daemon):
        status, body = self._get(http_daemon, "/healthz")
        assert status == 200
        assert body == {"ok": True,
                        "version": protocol.PROTOCOL_VERSION}

    def test_status(self, http_daemon):
        status, body = self._get(http_daemon, "/status")
        assert status == 200
        assert body["socket"] == http_daemon.socket_path

    def test_submit(self, http_daemon):
        url = f"http://127.0.0.1:{http_daemon.http_bound}/submit"
        payload = json.dumps(
            {"jobs": [job_to_transport(JOB)]}).encode()
        request = urllib.request.Request(
            url, data=payload, method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=60) as response:
            body = json.loads(response.read())
        assert body["jobs"][0]["status"] == "ok"
        assert body["jobs"][0]["result"]["stats"]["instructions"] > 0

    def test_unknown_endpoint_is_404(self, http_daemon):
        url = f"http://127.0.0.1:{http_daemon.http_bound}/nope"
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(url, timeout=30)
        assert err.value.code == 404

    def _post(self, daemon, path, payload, headers=None):
        url = f"http://127.0.0.1:{daemon.http_bound}{path}"
        request = urllib.request.Request(
            url, data=payload, method="POST",
            headers=headers or {"Content-Type": "application/json"})
        return urllib.request.urlopen(request, timeout=30)

    @pytest.mark.parametrize("payload", [
        b"not json at all",
        b"[1, 2, 3]",
        b'{"jobs": "nope"}',
        b'{"jobs": []}',
        b'{"jobs": [{"kind": "sim"}]}',
    ])
    def test_malformed_submit_body_is_400(self, http_daemon, payload):
        with pytest.raises(urllib.error.HTTPError) as err:
            self._post(http_daemon, "/submit", payload)
        assert err.value.code == 400
        assert "error" in json.loads(err.value.read())
        # The daemon shrugged it off: the next request still works.
        status, body = self._get(http_daemon, "/healthz")
        assert status == 200 and body["ok"]

    def test_bad_job_spec_in_valid_envelope_is_400(self, http_daemon):
        payload = json.dumps(
            {"jobs": [{"kind": "warp", "job": {}}]}).encode()
        with pytest.raises(urllib.error.HTTPError) as err:
            self._post(http_daemon, "/submit", payload)
        assert err.value.code == 400
        assert "bad job spec" in json.loads(err.value.read())["error"]

    @pytest.mark.parametrize("path,method", [
        ("/healthz", "POST"), ("/status", "POST"),
        ("/submit", "GET"), ("/submit", "DELETE"),
    ])
    def test_wrong_method_is_405(self, http_daemon, path, method):
        url = f"http://127.0.0.1:{http_daemon.http_bound}{path}"
        request = urllib.request.Request(
            url, data=b"{}" if method != "GET" else None, method=method)
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 405

    def test_client_disconnect_mid_request_is_harmless(self,
                                                       http_daemon):
        # Promise a body, send half of it, vanish: the handler's
        # readexactly raises IncompleteReadError, which must tear down
        # only that connection.
        for partial in (b"",
                        b"POST /submit HTTP/1.1\r\n",
                        b"POST /submit HTTP/1.1\r\n"
                        b"Content-Length: 4096\r\n\r\n"
                        b'{"jobs": ['):
            sock = socketlib.create_connection(
                ("127.0.0.1", http_daemon.http_bound), timeout=10)
            if partial:
                sock.sendall(partial)
            sock.close()
        status, body = self._get(http_daemon, "/healthz")
        assert status == 200 and body["ok"]
        # No leaked half-open handlers left registered.
        assert http_daemon.scheduler.counters["submitted"] == 0


class TestFallback:
    def test_connect_or_none_on_dead_socket(self, tmp_path):
        assert connect_or_none(str(tmp_path / "nothing.sock")) is None

    def test_client_raises_unavailable(self, tmp_path):
        with pytest.raises(ServiceUnavailable):
            ServiceClient(str(tmp_path / "nothing.sock"))

    def test_cli_sweep_falls_back_to_embedded(self, tmp_path, capsys):
        code = main(["sweep", "--workloads", "bfs",
                     "--techniques", "conv", "--scale", "tiny",
                     "--max-instructions", "6000",
                     "--daemon", str(tmp_path / "nothing.sock"),
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        captured = capsys.readouterr()
        assert "falling back to the embedded engine" in captured.err
        assert "1 simulated" in captured.out


class TestCLIThroughDaemon:
    def test_sweep_uses_daemon(self, daemon, capsys):
        code = main(["sweep", "--workloads", "bfs",
                     "--techniques", "conv", "--scale", "tiny",
                     "--max-instructions", "6000",
                     "--daemon", daemon.socket_path,
                     "--cache-dir", "ignored-when-daemon"])
        assert code == 0
        captured = capsys.readouterr()
        assert "falling back" not in captured.err
        assert daemon.scheduler.counters["submitted"] == 1

    def test_fuzz_digest_identical_through_daemon(self, tmp_path):
        from repro.fuzz import fuzz
        d = ServiceDaemon(str(tmp_path / "f.sock"), store=None,
                          workers=2)
        thread = d.start_in_thread()
        try:
            with ServiceClient(d.socket_path) as client:
                via_daemon = fuzz(seed=3, budget=4, engine=client,
                                  corpus_dir=str(tmp_path / "c1"))
        finally:
            d.request_stop()
            thread.join(timeout=10)
        embedded = fuzz(seed=3, budget=4,
                        corpus_dir=str(tmp_path / "c2"))
        assert via_daemon.findings_digest() == embedded.findings_digest()
        assert via_daemon.cases == embedded.cases
