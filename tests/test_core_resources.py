"""Unit tests for slot allocators, window buffers, ports and config."""

import pytest

from repro.core.config import CoreConfig
from repro.core.ports import PortFile, PortGroup
from repro.core.resources import SlotAllocator, WindowBuffer


class TestSlotAllocator:
    def test_width_per_cycle(self):
        alloc = SlotAllocator(width=2)
        cycles = [alloc.allocate(0) for _ in range(5)]
        assert cycles == [0, 0, 1, 1, 2]

    def test_forward_jump(self):
        alloc = SlotAllocator(width=2)
        alloc.allocate(0)
        assert alloc.allocate(10) == 10
        assert alloc.allocate(0) == 10  # still bandwidth at cycle 10

    def test_restart_resets_bandwidth(self):
        alloc = SlotAllocator(width=2)
        alloc.allocate(0)
        alloc.restart_at(5)
        assert [alloc.allocate(0), alloc.allocate(0)] == [5, 5]

    def test_restart_does_not_go_backwards(self):
        alloc = SlotAllocator(width=1)
        alloc.allocate(10)
        alloc.restart_at(3)
        assert alloc.allocate(0) >= 3

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            SlotAllocator(0)


class TestWindowBuffer:
    def test_no_stall_until_full(self):
        window = WindowBuffer(capacity=2)
        assert window.allocate(5) == 5
        window.commit(100)
        assert window.allocate(6) == 6
        window.commit(200)

    def test_stalls_on_oldest_release(self):
        window = WindowBuffer(capacity=2)
        window.allocate(0)
        window.commit(50)
        window.allocate(0)
        window.commit(60)
        assert window.allocate(10) == 50  # waits for the oldest entry

    def test_no_stall_if_oldest_already_released(self):
        window = WindowBuffer(capacity=1)
        window.allocate(0)
        window.commit(5)
        assert window.allocate(20) == 20

    def test_occupancy_at(self):
        window = WindowBuffer(capacity=8)
        for release in (10, 20, 30):
            window.allocate(0)
            window.commit(release)
        assert window.occupancy_at(5) == 3
        assert window.occupancy_at(15) == 2
        assert window.occupancy_at(35) == 0


class TestPortGroup:
    def test_pipelined_back_to_back(self):
        group = PortGroup("alu", count=1, latency=3)
        assert group.issue(0) == 0
        assert group.issue(0) == 1  # pipelined: next cycle

    def test_unpipelined_blocks_for_latency(self):
        group = PortGroup("div", count=1, latency=10, pipelined=False)
        assert group.issue(0) == 0
        assert group.issue(0) == 10

    def test_multiple_ports(self):
        group = PortGroup("alu", count=2, latency=1)
        assert [group.issue(0) for _ in range(4)] == [0, 0, 1, 1]

    def test_ready_after_free(self):
        group = PortGroup("alu", count=1, latency=1)
        group.issue(0)
        assert group.issue(100) == 100


class TestPortFile:
    def test_snapshot_restore(self):
        ports = PortFile(CoreConfig())
        snap = ports.snapshot()
        for _ in range(20):
            ports.issue("load", 0)
        ports.restore(snap)
        assert ports.issue("load", 0) == 0

    def test_groups_exist(self):
        ports = PortFile(CoreConfig())
        for group in ("alu", "mul", "div", "fp", "fp_div", "load",
                      "store", "branch"):
            assert group in ports.groups
            assert group in ports.latency


class TestCoreConfig:
    def test_defaults_validate(self):
        CoreConfig().validate()
        CoreConfig.scaled().validate()

    def test_copy_overrides(self):
        cfg = CoreConfig().copy(rob_size=128)
        assert cfg.rob_size == 128
        assert CoreConfig().rob_size == 512  # original untouched

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(rob_size=0).validate()
        with pytest.raises(ValueError):
            CoreConfig(wp_frontend_buffer=-1).validate()

    def test_table1_rows_cover_key_parameters(self):
        rows = dict(CoreConfig().table1_rows())
        assert rows["ROB size"] == "512"
        assert "KiB" in rows["L1D"]
        assert "cycles" in rows["Memory latency"]

    def test_scaled_keeps_full_scale_memory_latency(self):
        # Branch-resolution depth must stay realistic when downscaling:
        # caches shrink, but the memory round-trip does not.
        assert CoreConfig.scaled().mem_latency >= CoreConfig().mem_latency
