"""Cross-module integration tests: the paper's qualitative invariants on a
real (small) workload.

These use a branch-missy, cache-missy micro-kernel rather than the full GAP
suite so the whole file stays fast; the benchmark harness covers the real
workloads.
"""

import pytest

from repro import CoreConfig, compare_techniques
from repro.minicc import compile_to_program
from repro.simulator.simulation import Simulator

# A bfs-flavoured kernel: data-dependent branch gated on a random-access
# load over an array larger than the scaled LLC.
KERNEL = """
int keys[4096];
int marks[4096];
void main() {
    int seed = 12345;
    for (int i = 0; i < 4096; i += 1) {
        seed = seed * 1103515245 + 12345;
        keys[i] = (seed >> 16) & 4095;
    }
    int hits = 0;
    for (int rep = 0; rep < 3; rep += 1) {
        for (int i = 0; i < 4096; i += 1) {
            int k = keys[i];
            if (marks[k] == rep) {
                marks[k] = rep + 1;
                hits += 1;
            }
        }
    }
    print_int(hits);
}
"""


@pytest.fixture(scope="module")
def comparison():
    program = compile_to_program(KERNEL)
    return compare_techniques(program, config=CoreConfig.scaled(),
                              name="kernel")


class TestPaperInvariants:
    def test_nowp_underestimates_performance(self, comparison):
        """Figure 1: not modeling the wrong path gives negative error for
        converging branch-missy workloads."""
        assert comparison.error("nowp") < -0.01

    def test_conv_reduces_error(self, comparison):
        """Figure 4: convergence exploitation recovers a substantial part
        of the wrong-path effect."""
        nowp = abs(comparison.error("nowp"))
        conv = abs(comparison.error("conv"))
        assert conv < nowp

    def test_instrec_between_nowp_and_conv(self, comparison):
        """instrec models no data addresses: its error stays close to
        nowp's for data-cache-dominated workloads."""
        nowp = comparison.error("nowp")
        instrec = comparison.error("instrec")
        assert abs(instrec - nowp) <= abs(nowp) * 0.5 + 0.01

    def test_wp_executed_ordering(self, comparison):
        """Table II: instrec executes >= conv executes >= wpemul executes
        (unknown-address loads behave like hits, so less accurate models
        race ahead)."""
        instrec = comparison.results["instrec"].stats.wp_executed
        conv = comparison.results["conv"].stats.wp_executed
        wpemul = comparison.results["wpemul"].stats.wp_executed
        assert instrec >= conv >= wpemul > 0

    def test_wp_trace_never_missing(self, comparison):
        """Predictor copies stay in lockstep: every timing-side mispredict
        has a functional wrong-path trace in wpemul mode."""
        assert comparison.results["wpemul"].stats.wp_trace_missing == 0

    def test_mispredict_counts_identical(self, comparison):
        counts = {t: r.stats.mispredict_windows
                  for t, r in comparison.results.items()}
        assert len(set(counts.values())) == 1

    def test_convergence_found_for_converging_kernel(self, comparison):
        stats = comparison.results["conv"].stats
        assert stats.conv_fraction > 0.5
        assert stats.conv_distance > 0
        assert stats.addr_recover_fraction > 0.02

    def test_wp_cache_misses_shift_not_grow(self, comparison):
        """Section V-C: "the overall cache miss rate does not change
        significantly across the techniques: ... converging misses along
        the wrong path are turning correct-path misses into hits"."""
        nowp = comparison.results["nowp"].cache_stats["l2"]
        wpemul = comparison.results["wpemul"].cache_stats["l2"]
        nowp_total = nowp["misses"]
        wpemul_total = wpemul["misses"]
        assert wpemul_total <= nowp_total * 1.6 + 50
        # And correct-path misses must actually drop.
        wpemul_cp = wpemul["misses"] - wpemul["wp_misses"]
        assert wpemul_cp < nowp_total

    def test_conv_covers_subset_of_wpemul_l2_misses(self, comparison):
        conv_wp = comparison.results["conv"].cache_stats["l2"]["wp_misses"]
        emul_wp = comparison.results["wpemul"].cache_stats["l2"][
            "wp_misses"]
        assert 0 <= conv_wp <= emul_wp

    def test_outputs_identical_across_techniques(self, comparison):
        outputs = {tuple(r.output) for r in comparison.results.values()}
        assert len(outputs) == 1


class TestQueueDepthIndependence:
    def test_deeper_queue_same_result(self):
        program = compile_to_program(KERNEL)
        shallow = Simulator(program, config=CoreConfig.scaled(),
                            technique="nowp", max_instructions=60_000,
                            queue_depth=1024).run()
        deep = Simulator(program, config=CoreConfig.scaled(),
                         technique="nowp", max_instructions=60_000,
                         queue_depth=8192).run()
        assert shallow.cycles == deep.cycles
