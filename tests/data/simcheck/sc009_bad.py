# simcheck-fixture: SC009
"""Registry-closure violations: a registered class missing half its
transport surface, dispatch on kind literals nobody registered, and a
job-shaped class that is never registered."""


def register_job_kind(kind, module, attr):
    return None


def job_class(kind):
    return None


class GoodJob:
    kind = "good"

    def to_dict(self):
        return {}

    @classmethod
    def from_dict(cls, data):
        return cls()

    def run(self):
        return None

    @classmethod
    def result_from_dict(cls, data):
        return data

    def key(self):
        return "good"

    def label(self):
        return "good"


class BrokenJob:
    kind = "broken"

    def to_dict(self):
        return {}

    def run(self):
        return None

    def key(self):
        return "broken"

    def label(self):
        return "broken"


class StrayJob:  # expect: SC009
    kind = "stray"

    def to_dict(self):
        return {}

    def run(self):
        return None


register_job_kind("good", "sc009_bad", "GoodJob")
register_job_kind("broken", "sc009_bad", "BrokenJob")  # expect: SC009


def dispatch(job):
    if job.kind == "good":
        return job_class("good")
    if job.kind == "mystery":  # expect: SC009
        return job_class("phantom")  # expect: SC009
    return None
