# simcheck-fixture: SC003
"""Exec-handler violations: an eval outside _build_handlers, a template
substitution that escapes the whitelist, and one that cannot be resolved
to a constant."""


def decode(payload):
    return eval(payload)  # expect: SC003


def _build_handlers(compute):
    handlers = {}

    ALU = (
        "def run(emu, ins):\n"
        "    x = emu.x\n"
        "    a = x[ins.rs1]\n"
        "    b = x[ins.rs2]\n"
        "    x[ins.rd] = {expr}\n"
    )

    def gen(op, template, **subst):
        namespace = {}
        exec(template.format(**subst), namespace)
        handlers[op] = namespace["run"]

    gen("add", ALU, expr="a + b")
    gen("leak", ALU, expr="__import__('os').getpid()")  # expect: SC003
    gen("oracle", ALU, expr=compute())  # expect: SC003
    return handlers
