# simcheck-fixture: SC004
"""Cache-key partition violations: an overlap plus a stale declared
name (both anchor on the KEYED_FIELDS line), an undeclared field, a
keyed field spec() never reads, and an excluded field it does read."""

import dataclasses

KEYED_FIELDS = ("workload", "seed", "retired")  # expect: SC004
KEY_EXCLUDED_FIELDS = ("log_path", "seed")


@dataclasses.dataclass
class BrokenJob:
    workload: str
    seed: int  # expect: SC004
    log_path: str  # expect: SC004
    verbose: bool  # expect: SC004

    def spec(self):
        return {"workload": self.workload, "log": self.log_path}
