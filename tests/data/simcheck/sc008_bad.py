# simcheck-fixture: SC008
"""Snapshot-completeness violations: a mutable field state_dict never
serializes, a stale SNAPSHOT_EXCLUDE entry, and a capture() that skips
one of the Simulator's declared components."""

from typing import Optional


class PageStore:
    SNAPSHOT_EXCLUDE = ("scratch",)  # expect: SC008

    def __init__(self, limit):
        self.limit = limit
        self._pages = {}
        self._dirty = []  # expect: SC008

    def state_dict(self):
        return {"pages": dict(self._pages)}

    def load_state(self, state):
        self._pages = dict(state["pages"])


class Frontend:
    pass


class Core:
    pass


class Simulator:
    def __init__(self):
        self.frontend: Optional[Frontend] = None
        self.core: Optional[Core] = None


class Snapshot:
    @classmethod
    def capture(cls, frontend):  # expect: SC008
        return cls()

    def restore(self, sim):
        sim.frontend = None
