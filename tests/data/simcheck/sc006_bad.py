# simcheck-fixture: SC006
"""__slots__ violations: a marked class without slots, an unverifiable
base, a store outside the slot set, and a __new__ construction site
that both misses a slot and invents an attribute (both anchor on the
construction line)."""


class SomeBase:
    pass


# simcheck: per-instruction
class Unslotted:  # expect: SC006
    def __init__(self, pc):
        self.pc = pc


# simcheck: per-instruction
class Derived(SomeBase):  # expect: SC006
    __slots__ = ()


# simcheck: per-instruction
class Slotted:
    __slots__ = ("pc", "seq")

    def __init__(self, pc, seq):
        self.pc = pc
        self.seq = seq

    def attach(self, note):
        self.note = note  # expect: SC006


def build_fast():
    rec = Slotted.__new__(Slotted)  # expect: SC006
    rec.pc = 0
    rec.extra = 1
    return rec
