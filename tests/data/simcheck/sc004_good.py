# simcheck-fixture: SC004
"""A complete, explicit cache-key partition SC004 accepts — including a
keyed field reached only through spec()'s self-method closure."""

import dataclasses

KEYED_FIELDS = ("workload", "seed")
KEY_EXCLUDED_FIELDS = ("log_path",)


@dataclasses.dataclass
class CleanJob:
    workload: str
    seed: int
    log_path: str

    def spec(self):
        return {"workload": self.workload, "seed": self._seed_value()}

    def _seed_value(self):
        return self.seed
