# simcheck-fixture: SC002
"""Hot-path conformant shape: one ``_obs is None`` test per call, the
hook bound to a local before the loop, and a quiet inner loop."""


class Pipeline:
    # simcheck: hotpath
    def process_batch(self, batch):
        emit = None
        if self._obs is not None:
            emit = self._obs.batch_hook
        total = 0
        for item in batch:
            total += item
        if emit is not None:
            emit(total)
        return total
