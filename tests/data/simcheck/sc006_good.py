# simcheck-fixture: SC006
"""A slotted per-instruction class SC006 accepts, built through the
batch pipeline's ``__new__``-alias idiom with every slot populated."""


# simcheck: per-instruction
class Record:
    __slots__ = ("pc", "seq")

    def __init__(self, pc, seq):
        self.pc = pc
        self.seq = seq


def build_fast(n):
    make = Record.__new__
    out = []
    for seq in range(n):
        rec = make(Record)
        rec.pc = seq * 4
        rec.seq = seq
        out.append(rec)
    return out
