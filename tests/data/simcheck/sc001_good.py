# simcheck-fixture: SC001
"""Deterministic counterparts SC001 must accept: seeded RNG instances,
monotonic measurement clocks, sorted iteration over sets and directory
listings."""

import os
import random
import time


def seeded_values(seed, n):
    rng = random.Random(seed)
    return [rng.random() for _ in range(n)]


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def stable_members(members):
    universe = set(members)
    return [m for m in sorted(universe) if m in universe]


def stable_listing(root):
    return [name for name in sorted(os.listdir(root))]
