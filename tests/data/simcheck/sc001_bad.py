# simcheck-fixture: SC001
"""Deliberate SC001 violations.  Every line a finding must anchor to
carries a trailing expect marker; tests/test_simcheck.py asserts the
reported (rule, line) pairs match exactly."""

import os
import random
import time


def timestamp():
    return time.time()  # expect: SC001


def jitter():
    return random.random()  # expect: SC001


def object_key(obj):
    return id(obj)  # expect: SC001


def drain(pending, root):
    out = []
    for item in {"a", "b"}:  # expect: SC001
        out.append(item)
    for name in os.listdir(root):  # expect: SC001
        out.append(name)
    groups = [set(pending), set(out)]
    for member in groups[0]:  # expect: SC001
        out.append(member)
    return out
