# simcheck-fixture: SC002
"""Hot-path violations: a second _obs test, and printing / f-string /
comprehension allocation plus an obs-method call inside the loop."""


class Pipeline:
    # simcheck: hotpath
    def process_batch(self, batch):
        if self._obs is None:
            pending = 0
        if self._obs is not None:  # expect: SC002
            pending = 1
        total = pending
        for item in batch:
            print(item)  # expect: SC002
            label = f"item-{item}"  # expect: SC002
            squares = [x * x for x in range(item)]  # expect: SC002
            total += item + len(label) + len(squares)
        for item in batch:
            self._obs.note(item)  # expect: SC002
        return total
