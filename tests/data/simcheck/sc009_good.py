# simcheck-fixture: SC009
"""A closed registry: the registered class carries the full transport
surface and a matching kind attribute, and every dispatch names a
registered kind."""


def register_job_kind(kind, module, attr):
    return None


def job_class(kind):
    return None


class DemoJob:
    kind = "demo"

    def to_dict(self):
        return {}

    @classmethod
    def from_dict(cls, data):
        return cls()

    def run(self):
        return None

    @classmethod
    def result_from_dict(cls, data):
        return data

    def key(self):
        return "demo"

    def label(self):
        return "demo"


register_job_kind("demo", "sc009_good", "DemoJob")


def dispatch(job):
    if getattr(job, "kind", None) in ("demo",):
        return job_class("demo")
    return None
