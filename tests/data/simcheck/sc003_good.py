# simcheck-fixture: SC003
"""A sanctioned exec site SC003 accepts: statically visible template,
constant substitutions (directly and through an ``alu``-style wrapper),
rendered code confined to the emu/ins namespace and helper calls."""


def _build_handlers():
    handlers = {}

    ALU = (
        "def run(emu, ins):\n"
        "    x = emu.x\n"
        "    a = x[ins.rs1]\n"
        "    b = x[ins.rs2]\n"
        "    x[ins.rd] = _s32({expr})\n"
    )

    def gen(op, template, **subst):
        namespace = {"_s32": lambda v: v}
        exec(template.format(**subst), namespace)
        handlers[op] = namespace["run"]

    def alu(op, expr):
        gen(op, ALU, expr=expr)

    alu("add", "a + b")
    alu("sub", "a - b")
    gen("mul", ALU, expr="a * b")
    return handlers
