# simcheck-fixture: SC008
"""Snapshot-complete versions: every mutable field round-trips through
state_dict/load_state or sits in a justified SNAPSHOT_EXCLUDE, and
capture() accounts for every Simulator component (core is excluded the
same way the real SimSnapshot excludes it: timing state is rebuilt)."""

from typing import Optional


class PageStore:
    # scratch buffers are recomputed on first access after restore
    SNAPSHOT_EXCLUDE = ("_scratch",)

    def __init__(self, limit):
        self.limit = limit
        self._pages = {}
        self._dirty = []
        self._scratch = []

    def state_dict(self):
        return {"pages": dict(self._pages),
                "dirty": list(self._dirty)}

    def load_state(self, state):
        self._pages = dict(state["pages"])
        self._dirty = list(state["dirty"])


class Frontend:
    pass


class Core:
    pass


class Simulator:
    def __init__(self):
        self.frontend: Optional[Frontend] = None
        self.core: Optional[Core] = None


class Snapshot:
    SNAPSHOT_EXCLUDE = ("core",)

    @classmethod
    def capture(cls, frontend):
        return cls()

    def restore(self, sim):
        sim.frontend = None
