# simcheck-fixture: SC005
"""Complete round-trips SC005 accepts: a generic __slots__-driven
counters pair, and an explicit pair whose live handle is declared in
ROUNDTRIP_EXCLUDE."""


class Counters:
    __slots__ = ("cycles", "retired")

    def counters(self):
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_counters(cls, data):
        return cls(**data)


class Labeled:
    ROUNDTRIP_EXCLUDE = ("handle",)

    def __init__(self, name, handle):
        self.name = name
        self.handle = handle

    def to_dict(self):
        return {"name": self.name}

    @classmethod
    def from_dict(cls, data):
        return cls(data["name"], None)
