# simcheck-fixture: SC010
"""Transitive hot-path violations: the loop body looks clean, but one
callee logs two hops away and another reads the wall clock."""

import time


def _trace(value):
    print(value)


def _lookup(value):
    _trace(value)
    return value + 1


class Pipeline:
    def _stamp(self):
        return time.time()

    # simcheck: hotpath
    def process_batch(self, batch):
        total = 0
        for item in batch:
            total += _lookup(item)  # expect: SC010
            total += int(self._stamp())  # expect: SC010
        return total
