# simcheck-fixture: SC007
"""Async-safe versions of the bad fixture's patterns: blocking work is
shipped to an executor thread as a function *value* (to_thread /
run_in_executor), and awaits happen under an asyncio.Lock, never a
threading one."""

import asyncio


def _write_raw(path, data):
    with open(path, "wb") as fh:
        fh.write(data)


class JournalingService:
    def __init__(self, path):
        self.path = path
        self._alock = asyncio.Lock()

    async def handle_submit(self, payload):
        await asyncio.sleep(0.01)
        return payload

    async def handle_flush(self):
        await asyncio.to_thread(_write_raw, self.path, b"flush")
        return True

    async def handle_flush_executor(self):
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, _write_raw, self.path, b"x")
        return True

    async def handle_locked(self):
        async with self._alock:
            await asyncio.sleep(0)
        return None
