# simcheck-fixture: SC010
"""Transitively clean hot path: callees only compute and allocate their
return values (allocation in a callee is not a violation — SC002 polices
the loop body itself), and the one cold diagnostic call is explicitly
allowed."""


def _accumulate(value):
    return [v * v for v in range(value)]


def _log_rare(value):
    print(value)


class Pipeline:
    # simcheck: hotpath
    def process_batch(self, batch):
        total = 0
        for item in batch:
            total += len(_accumulate(item))
            # simcheck: allow=SC010 cold diagnostic, sampled offline
            _log_rare(item)
        return total
