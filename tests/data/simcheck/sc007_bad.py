# simcheck-fixture: SC007
"""Async-safety violations: a direct time.sleep in a coroutine, a
blocking open() hidden two synchronous hops away, and a threading lock
held across an await."""

import asyncio
import threading
import time


def _write_raw(path, data):
    with open(path, "wb") as fh:
        fh.write(data)


class JournalingService:
    def __init__(self, path):
        self.path = path
        self._lock = threading.Lock()

    async def handle_submit(self, payload):
        time.sleep(0.01)  # expect: SC007
        return payload

    async def handle_flush(self):
        self._flush_all()  # expect: SC007
        return True

    async def handle_locked(self):
        with self._lock:  # expect: SC007
            await asyncio.sleep(0)
        return None

    def _flush_all(self):
        _write_raw(self.path, b"flush")
