# simcheck-fixture: SC005
"""Round-trip gaps: a field the serializer drops, a field the
deserializer never restores, and a stale ROUNDTRIP_EXCLUDE entry
(anchored on the class line)."""


class Snapshot:  # expect: SC005
    ROUNDTRIP_EXCLUDE = ("scratch", "ghost")

    def __init__(self, cycles, retired, label, scratch):
        self.cycles = cycles
        self.retired = retired  # expect: SC005
        self.label = label  # expect: SC005
        self.scratch = scratch

    def to_dict(self):
        return {"cycles": self.cycles, "label": self.label}

    @classmethod
    def from_dict(cls, data):
        snap = object.__new__(Snapshot)
        snap.cycles = data["cycles"]
        snap.retired = 0
        return snap
