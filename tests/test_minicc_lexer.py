"""Unit tests for the minicc lexer."""

import pytest

from repro.minicc.lexer import LexerError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        toks = tokenize("int intx for forth")
        assert [t.kind for t in toks[:-1]] == ["keyword", "ident",
                                               "keyword", "ident"]

    def test_integer_literals(self):
        toks = tokenize("0 42 0x1F")
        assert all(t.kind == "int" for t in toks[:-1])
        assert texts("0 42 0x1F") == ["0", "42", "0x1F"]

    def test_float_literals(self):
        toks = tokenize("1.5 0.25 1e3 2.5e-2")
        assert all(t.kind == "float" for t in toks[:-1])

    def test_char_literal_becomes_int(self):
        toks = tokenize("'A' '\\n'")
        assert [t.text for t in toks[:-1]] == ["65", "10"]

    def test_operators_longest_match(self):
        assert texts("a <<= b << c <= d < e") == \
            ["a", "<<=", "b", "<<", "c", "<=", "d", "<", "e"]
        assert texts("a && b & c") == ["a", "&&", "b", "&", "c"]

    def test_eof_token_present(self):
        assert kinds("")[-1] == "eof"


class TestComments:
    def test_line_comment(self):
        assert texts("a // b c\nd") == ["a", "d"]

    def test_block_comment(self):
        assert texts("a /* b\nc */ d") == ["a", "d"]

    def test_line_numbers_across_block_comment(self):
        toks = tokenize("a /* x\ny */ b")
        assert toks[0].line == 1
        assert toks[1].line == 2

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("a /* b")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("a @ b")
        assert excinfo.value.line == 1

    def test_malformed_number(self):
        with pytest.raises(LexerError):
            tokenize("1.2.3")

    def test_bad_char_literal(self):
        with pytest.raises(LexerError):
            tokenize("'ab'")

    def test_line_tracking(self):
        toks = tokenize("a\nb\n  c")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]
        assert toks[2].column == 3
