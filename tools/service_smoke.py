#!/usr/bin/env python
"""CI smoke test for the sweep daemon (`repro serve`).

Exercises the service contract end-to-end, the way CI can observe it:

1. start a real daemon subprocess on a Unix socket,
2. have two concurrent clients submit the *same* small sweep,
3. assert — from the daemon's journal — that each job key executed
   exactly once (the dedupe guarantee), while both clients got full
   result sets,
4. assert the daemon-path results are digest-identical to an embedded
   (no-daemon) engine run of the same grid,
5. shut the daemon down over the wire and check it exits cleanly and
   removes its socket.

Run from the repo root: ``PYTHONPATH=src python tools/service_smoke.py``.
Exits nonzero with a diagnostic on any violation.
"""

import hashlib
import json
import os
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import (ExperimentEngine, ResultStore, RunJournal,  # noqa: E402
                          SimJob)
from repro.service import ServiceClient  # noqa: E402

WAIT_SECONDS = 30


def fail(message):
    print(f"service-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def result_digest(outcomes):
    """SHA-256 over the outcomes' serialized results, wall-clock
    excluded (it varies per execution; everything else must not)."""
    basis = []
    for outcome in outcomes:
        data = outcome.result.to_dict()
        data.pop("wall_seconds", None)
        basis.append(data)
    blob = json.dumps(basis, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def main():
    grid = [SimJob(workload="gap.bfs", technique=technique,
                   scale="tiny", max_instructions=8000)
            for technique in ("nowp", "conv")]

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        socket_path = os.path.join(tmp, "repro.sock")
        cache_dir = os.path.join(tmp, "cache")
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", socket_path, "--cache-dir", cache_dir,
             "--jobs", "2"],
            env={**os.environ,
                 "PYTHONPATH": os.path.join(
                     os.path.dirname(__file__), "..", "src")})
        try:
            deadline = time.time() + WAIT_SECONDS
            while not os.path.exists(socket_path):
                if daemon.poll() is not None:
                    fail(f"daemon exited early "
                         f"(code {daemon.returncode})")
                if time.time() > deadline:
                    fail(f"daemon socket never appeared "
                         f"({WAIT_SECONDS}s)")
                time.sleep(0.1)

            # Two concurrent clients, identical grid.
            results = {}
            errors = []

            def client_run(name):
                try:
                    with ServiceClient(socket_path) as client:
                        results[name] = client.run(grid)
                except Exception as exc:  # noqa: BLE001 — report, don't hang CI
                    errors.append(f"{name}: {exc}")

            threads = [threading.Thread(target=client_run, args=(n,))
                       for n in ("client-a", "client-b")]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=WAIT_SECONDS * 4)
            if errors:
                fail("; ".join(errors))
            if set(results) != {"client-a", "client-b"}:
                fail("a client never returned")
            for name, outcomes in sorted(results.items()):
                bad = [o.job.label for o in outcomes if not o.ok]
                if bad:
                    fail(f"{name} got failed outcomes: {bad}")

            # Journal-verified single execution per key.
            journal = RunJournal(
                ResultStore(cache_dir).journal_path)
            executed = {}
            for entry in journal.entries():
                if entry["status"] == "ok":
                    executed[entry["key"]] = \
                        executed.get(entry["key"], 0) + 1
            for job in grid:
                if executed.get(job.key) != 1:
                    fail(f"{job.label} executed "
                         f"{executed.get(job.key, 0)} times, want 1")

            # Digest equality: daemon path vs embedded path.
            daemon_digest = result_digest(results["client-a"])
            if daemon_digest != result_digest(results["client-b"]):
                fail("the two clients disagree on results")
            embedded = ExperimentEngine(
                store=ResultStore(os.path.join(tmp, "embedded")),
                jobs=1).run(grid)
            if daemon_digest != result_digest(embedded):
                fail("daemon results differ from embedded engine")

            # Clean shutdown over the wire.
            ServiceClient(socket_path).shutdown()
            try:
                daemon.wait(timeout=WAIT_SECONDS)
            except subprocess.TimeoutExpired:
                fail("daemon did not exit after shutdown op")
            if daemon.returncode != 0:
                fail(f"daemon exited with code {daemon.returncode}")
            if os.path.exists(socket_path):
                fail("daemon left its socket file behind")
        finally:
            if daemon.poll() is None:
                daemon.terminate()
                try:
                    daemon.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    daemon.kill()

    print(f"service-smoke: OK — 2 clients x {len(grid)} jobs, "
          f"each key executed once, digests equal "
          f"({daemon_digest[:16]})")


if __name__ == "__main__":
    main()
