"""Effect inference over the call graph.

Each project function gets a *direct* effect set from its own body —
syntactic detection of calls that block, log, allocate, read clocks,
touch the filesystem, draw randomness, or ``exec`` — and a *closed*
effect set computed by fixpointing those sets over the
:class:`~simcheck.graph.CallGraph` edges.  Every inherited effect keeps
a **witness**: the category, a human-readable detail, the line it was
detected at, and the qname chain from the asking function down to the
sinning one, so rule messages can say *why* (``submit → _journal →
append_jsonl_line: os.write``) instead of just *that*.

Categories (:class:`Effect`):

* ``BLOCKING`` — event-loop starvation hazards: ``time.sleep``, sync
  file/socket/subprocess IO, ``input``, un-awaited ``.result()`` /
  ``.connect()`` / ``.recv()``-style calls on untracked receivers.
* ``LOGGING`` — ``print``/``logging``/``warnings``/stdio writes.
* ``FORMAT`` — f-strings / ``.format`` / ``%``-format outside ``raise``.
* ``TIME`` — wall-clock reads (the SC001 table).
* ``RNG`` — the global ``random`` / ``np.random`` RNGs.
* ``EXEC`` — ``exec``/``eval``/``compile``.
* ``FS`` — filesystem mutation/enumeration (``os.makedirs``, ``shutil``,
  ``glob`` …).  Read-side ``open`` is classified BLOCKING, not FS.
* ``ALLOC`` — comprehensions/lambdas outside ``raise`` (recorded for
  completeness; SC010 keys off the other categories).

Conservatism mirrors the graph's: effects flow only along *resolved*
edges, so a callee reached through dynamic dispatch contributes nothing
— but the direct tables are receiver-independent where they can be
(``anything.result()`` un-awaited is BLOCKING), which covers the
``Future.result()`` class of bug without type inference.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from simcheck.graph import CallGraph, FuncNode
from simcheck.rules._util import dotted_name, enclosing_raise_spans, \
    in_spans, scoped_walk


class Effect:
    BLOCKING = "blocking-io"
    LOGGING = "logging"
    FORMAT = "formatting"
    TIME = "wall-clock"
    RNG = "global-rng"
    EXEC = "exec"
    FS = "filesystem"
    ALLOC = "allocation"


class Witness:
    """One effect occurrence with its provenance chain."""

    __slots__ = ("effect", "detail", "line", "chain")

    def __init__(self, effect: str, detail: str, line: int,
                 chain: Tuple[str, ...]):
        self.effect = effect
        self.detail = detail
        self.line = line          # line in the *defining* file
        self.chain = chain        # qnames, caller-first

    def via(self, qname: str) -> "Witness":
        return Witness(self.effect, self.detail, self.line,
                       (qname,) + self.chain)

    def describe(self) -> str:
        path = " -> ".join(q.rsplit(".", 2)[-1] if q.count(".") < 2
                           else ".".join(q.rsplit(".", 2)[-2:])
                           for q in self.chain)
        return f"{self.detail} (via {path})" if len(self.chain) > 1 \
            else self.detail

    def __repr__(self) -> str:
        return f"<Witness {self.effect}: {self.describe()}>"


#: Dotted-call → (effect, detail).  Matched on the full resolved-alias
#: name (``time.sleep``) and, for single-part entries, the bare name.
DIRECT_CALLS: Dict[str, Tuple[str, str]] = {
    # blocking
    "time.sleep": (Effect.BLOCKING, "time.sleep() blocks the thread"),
    "open": (Effect.BLOCKING, "open() does synchronous file IO"),
    "io.open": (Effect.BLOCKING, "io.open() does synchronous file IO"),
    "os.open": (Effect.BLOCKING, "os.open() does synchronous file IO"),
    "os.read": (Effect.BLOCKING, "os.read() does synchronous file IO"),
    "os.write": (Effect.BLOCKING, "os.write() does synchronous file IO"),
    "os.fsync": (Effect.BLOCKING, "os.fsync() does synchronous file IO"),
    "input": (Effect.BLOCKING, "input() blocks on stdin"),
    "select.select": (Effect.BLOCKING, "select.select() blocks"),
    "socket.create_connection":
        (Effect.BLOCKING, "socket.create_connection() blocks"),
    "urllib.request.urlopen":
        (Effect.BLOCKING, "urlopen() does synchronous network IO"),
    # wall clock (the SC001 table, minus monotonic measurement clocks)
    "time.time": (Effect.TIME, "time.time() wall-clock read"),
    "time.time_ns": (Effect.TIME, "time.time_ns() wall-clock read"),
    "datetime.datetime.now": (Effect.TIME, "datetime.now() read"),
    "datetime.datetime.utcnow": (Effect.TIME, "datetime.utcnow() read"),
    "datetime.now": (Effect.TIME, "datetime.now() read"),
    "datetime.date.today": (Effect.TIME, "date.today() read"),
    # logging
    "print": (Effect.LOGGING, "print() call"),
    # exec
    "exec": (Effect.EXEC, "exec() call"),
    "eval": (Effect.EXEC, "eval() call"),
    "compile": (Effect.EXEC, "compile() call"),
    # filesystem
    "os.makedirs": (Effect.FS, "os.makedirs() filesystem mutation"),
    "os.mkdir": (Effect.FS, "os.mkdir() filesystem mutation"),
    "os.unlink": (Effect.FS, "os.unlink() filesystem mutation"),
    "os.remove": (Effect.FS, "os.remove() filesystem mutation"),
    "os.rename": (Effect.FS, "os.rename() filesystem mutation"),
    "os.replace": (Effect.FS, "os.replace() filesystem mutation"),
    "os.rmdir": (Effect.FS, "os.rmdir() filesystem mutation"),
    "os.listdir": (Effect.FS, "os.listdir() filesystem enumeration"),
    "os.scandir": (Effect.FS, "os.scandir() filesystem enumeration"),
    "os.walk": (Effect.FS, "os.walk() filesystem enumeration"),
    "os.stat": (Effect.FS, "os.stat() filesystem read"),
}

#: Module prefixes whose every call carries one effect.
PREFIX_CALLS: Tuple[Tuple[str, str, str], ...] = (
    ("subprocess.", Effect.BLOCKING, "subprocess call blocks"),
    ("requests.", Effect.BLOCKING, "requests does synchronous HTTP"),
    ("logging.", Effect.LOGGING, "logging call"),
    ("warnings.", Effect.LOGGING, "warnings call"),
    ("shutil.", Effect.FS, "shutil filesystem operation"),
    ("glob.", Effect.FS, "glob filesystem enumeration"),
)

#: Method names that block when called un-awaited on *any* receiver.
#: ``.result()`` only with no arguments — ``result(timeout=0)`` is a
#: non-blocking poll, and positional args usually mean something else.
BLOCKING_METHODS = {
    "result": "un-awaited .result() blocks on the future",
    "connect": "synchronous .connect() blocks",
    "accept": "synchronous .accept() blocks",
    "recv": "synchronous .recv() blocks",
    "recv_into": "synchronous .recv_into() blocks",
    "sendall": "synchronous .sendall() blocks",
    "acquire": "synchronous .acquire() can block the loop",
}

#: Receiver attribute/name hints that make a LOGGING write: the write
#: method itself is too generic to blacklist globally.
_STDIO_NAMES = {"stdout", "stderr"}

_RNG_OK = {"Random", "SystemRandom", "default_rng", "Generator",
           "SeedSequence", "PCG64", "Philox", "SFC64", "MT19937",
           "BitGenerator", "RandomState"}


def classify_call(call: ast.Call, awaited: bool,
                  imports: Dict[str, str]) -> Optional[Tuple[str, str]]:
    """(effect, detail) for one call node, or None.

    ``imports`` is the module's alias map, used to resolve
    ``from time import sleep``-style bare names back to their dotted
    origin before matching the tables.
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    parts = name.split(".")
    resolved = name
    if parts[0] in imports:
        target = imports[parts[0]]
        if target != parts[0]:
            resolved = ".".join([target] + parts[1:])
    for candidate in (resolved, name):
        if candidate in DIRECT_CALLS:
            return DIRECT_CALLS[candidate]
        for prefix, effect, detail in PREFIX_CALLS:
            if candidate.startswith(prefix):
                return effect, detail
    rparts = resolved.split(".")
    if len(rparts) >= 2 and rparts[-2] == "random" and \
            rparts[0] in ("np", "numpy") and rparts[-1] not in _RNG_OK:
        return Effect.RNG, f"numpy global RNG `{name}()`"
    if len(rparts) == 2 and rparts[0] == "random" and \
            rparts[1] not in _RNG_OK:
        return Effect.RNG, f"global random RNG `{name}()`"
    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        if attr == "write" and parts[-2] in _STDIO_NAMES:
            return Effect.LOGGING, f"`{name}()` stdio write"
        if not awaited and attr in BLOCKING_METHODS:
            if attr == "result" and (call.args or call.keywords):
                return None
            return Effect.BLOCKING, BLOCKING_METHODS[attr]
    return None


def direct_witnesses(func: FuncNode) -> List[Witness]:
    """Effects detected in one function's own body (no propagation)."""
    imports = func.module.imports
    node = func.node
    awaited = {id(n.value) for n in ast.walk(node)
               if isinstance(n, ast.Await)}
    raise_spans = enclosing_raise_spans(node)
    out: List[Witness] = []
    chain = (func.qname,)
    for child in scoped_walk(node):
        if isinstance(child, ast.Call):
            hit = classify_call(child, id(child) in awaited, imports)
            if hit is not None:
                out.append(Witness(hit[0], hit[1], child.lineno, chain))
            if isinstance(child.func, ast.Attribute) and \
                    child.func.attr == "format" and \
                    not in_spans(child.lineno, raise_spans):
                out.append(Witness(Effect.FORMAT, "str.format() call",
                                   child.lineno, chain))
        elif isinstance(child, ast.JoinedStr) and \
                not in_spans(child.lineno, raise_spans):
            out.append(Witness(Effect.FORMAT, "f-string build",
                               child.lineno, chain))
        elif isinstance(child, (ast.ListComp, ast.SetComp, ast.DictComp,
                                ast.GeneratorExp, ast.Lambda)) and \
                not in_spans(child.lineno, raise_spans):
            out.append(Witness(Effect.ALLOC,
                               f"{type(child).__name__} allocation",
                               child.lineno, chain))
    return out


class EffectIndex:
    """Closed per-function effect sets over a call graph."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        #: qname → direct witnesses (own body only).
        self.direct: Dict[str, List[Witness]] = {}
        #: qname → closed witnesses: one representative witness per
        #: (effect, immediate-callee) pair, transitive closure included.
        self.closed: Dict[str, List[Witness]] = {}
        for qname, func in graph.functions.items():
            self.direct[qname] = direct_witnesses(func)
        self._fixpoint()

    def _fixpoint(self) -> None:
        # Seed with direct witnesses, then propagate caller ← callee
        # until no function's (effect, origin-qname) summary grows.
        # Summaries are keyed coarsely so cycles terminate: at most one
        # witness per (effect, origin function) survives per function.
        for qname in self.graph.functions:
            self.closed[qname] = list(self.direct[qname])
        keys = {qname: {(w.effect, w.chain[-1])
                        for w in self.closed[qname]}
                for qname in self.closed}
        changed = True
        while changed:
            changed = False
            for qname, func in self.graph.functions.items():
                for call, callee in self.graph.calls_in(func):
                    for w in self.closed.get(callee.qname, ()):
                        key = (w.effect, w.chain[-1])
                        if key in keys[qname]:
                            continue
                        keys[qname].add(key)
                        self.closed[qname].append(w.via(qname))
                        changed = True

    # -- queries -----------------------------------------------------------------

    def effects_of(self, func: FuncNode) -> set:
        return {w.effect for w in self.closed.get(func.qname, ())}

    def witnesses(self, func: FuncNode,
                  categories: Sequence[str]) -> List[Witness]:
        wanted = set(categories)
        return [w for w in self.closed.get(func.qname, ())
                if w.effect in wanted]

    def sync_blocking_witness(self, func: FuncNode) -> Optional[Witness]:
        """First BLOCKING witness reachable from ``func`` through
        *synchronous* callees only (an async callee is its own SC007
        subject, so traversal stops there), memoized per function."""
        return self._sync_blocking(func, {}, ())

    def _sync_blocking(self, func: FuncNode, memo, stack):
        if func.qname in stack:
            return None
        cached = memo.get(func.qname, "missing")
        if cached != "missing":
            return cached
        result = None
        for w in self.direct.get(func.qname, ()):
            if w.effect == Effect.BLOCKING:
                result = w
                break
        if result is None:
            for call, callee in self.graph.calls_in(func):
                if callee.is_async:
                    continue
                deeper = self._sync_blocking(callee, memo,
                                             stack + (func.qname,))
                if deeper is not None:
                    result = deeper.via(func.qname)
                    break
        memo[func.qname] = result
        return result
