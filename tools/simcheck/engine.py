"""simcheck core: source loading, marker parsing, baselines, the runner.

The suite is deliberately simple machinery around :mod:`ast`:

* :class:`SourceFile` — one parsed ``.py`` file plus the simcheck marker
  comments found in it (``hotpath``, ``per-instruction``, ``allow=SCnnn``,
  and the ``# simcheck-fixture`` header that quarantines rule fixtures).
* :class:`Project` — a cross-file index built in a pre-pass (today: the
  ``per-instruction``-marked classes and their ``__slots__``), so rules
  can check construction sites in one module against a class defined in
  another.
* :class:`Baseline` — committed fingerprints of pre-existing violations.
  Fingerprints hash the *text* of the flagged line (not its number), so
  unrelated edits above a baselined finding do not un-suppress it.
* :func:`run_simcheck` / :func:`main` — collect files, run every rule,
  filter inline allows and the baseline, report ``path:line: SCnnn ...``.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import os
import re
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default scan roots when the CLI is given no paths (repo-root relative).
DEFAULT_PATHS = ("src", "tests")

#: Default committed baseline, next to this file.
BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "baseline.json")

_MARKER_RE = re.compile(r"#\s*simcheck:\s*([A-Za-z-]+)(?:=([A-Z0-9,]+))?")
_FIXTURE_RE = re.compile(r"#\s*simcheck-fixture\b")


class Finding:
    """One rule violation at one source line."""

    __slots__ = ("rule", "path", "line", "message", "severity",
                 "line_text")

    def __init__(self, rule: str, path: str, line: int, message: str,
                 severity: str = "error", line_text: str = ""):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.severity = severity
        self.line_text = line_text

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching: rule + file + the
        flagged line's text (whitespace-normalized).  Line *numbers* are
        deliberately absent so edits elsewhere in the file do not churn
        the baseline."""
        basis = "|".join((self.rule, _posix(self.path),
                          " ".join(self.line_text.split())))
        return hashlib.sha256(basis.encode()).hexdigest()[:16]

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.rule} "
                f"[{self.severity}] {self.message}")

    def __repr__(self) -> str:
        return f"<Finding {self.render()}>"


class SourceFile:
    """One parsed source file plus its simcheck marker comments."""

    def __init__(self, path: str, text: str, display_path: str = None):
        self.path = os.path.abspath(path)
        self.display_path = display_path if display_path is not None \
            else os.path.relpath(path)
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        #: True for rule-fixture files (scanned only on explicit request).
        self.is_fixture = any(_FIXTURE_RE.search(line)
                              for line in self.lines[:5])
        #: line -> set of rule ids allowed there (inline suppressions).
        self.allows: Dict[int, set] = {}
        #: marker name -> sorted line numbers where it appears.
        self.markers: Dict[str, List[int]] = {}
        for lineno, line in enumerate(self.lines, 1):
            for m in _MARKER_RE.finditer(line):
                name, arg = m.group(1), m.group(2)
                if name == "allow" and arg:
                    self.allows.setdefault(lineno, set()).update(
                        arg.split(","))
                else:
                    self.markers.setdefault(name, []).append(lineno)

    # -- marker helpers --------------------------------------------------------

    def has_marker(self, name: str, node: ast.AST) -> bool:
        """Is ``# simcheck: <name>`` attached to this def/class?

        A marker is attached when it sits on the ``def``/``class`` line
        itself, on the line directly above it, or on/above the first
        decorator.
        """
        lines = self.markers.get(name)
        if not lines:
            return False
        first = node.lineno
        for deco in getattr(node, "decorator_list", []):
            first = min(first, deco.lineno)
        return any(lineno in (first - 1, first, node.lineno)
                   for lineno in lines)

    def is_allowed(self, rule: str, lineno: int) -> bool:
        """Inline ``# simcheck: allow=SCnnn`` on the line or the line
        above suppresses the finding (the comment should say why)."""
        for at in (lineno, lineno - 1):
            if rule in self.allows.get(at, ()):
                return True
        return False

    def finding(self, rule: str, node_or_line, message: str,
                severity: str = "error") -> Finding:
        lineno = node_or_line if isinstance(node_or_line, int) \
            else node_or_line.lineno
        text = self.lines[lineno - 1] if 0 < lineno <= len(self.lines) \
            else ""
        return Finding(rule, self.display_path, lineno, message,
                       severity, text)

    @property
    def in_repro(self) -> bool:
        """Does this file belong to the simulator package proper?"""
        parts = _posix(self.path).split("/")
        return "repro" in parts and "src" in parts

    @property
    def is_test(self) -> bool:
        base = os.path.basename(self.path)
        return base.startswith("test_") or base == "conftest.py"


class Project:
    """Cross-file index shared by every rule invocation."""

    def __init__(self, files: Sequence[SourceFile]):
        self.files = list(files)
        #: class name -> (SourceFile, ClassDef, slots tuple or None)
        #: for every ``# simcheck: per-instruction``-marked class.
        self.per_instruction: Dict[str, Tuple[SourceFile, ast.ClassDef,
                                              Optional[Tuple[str, ...]]]]
        self.per_instruction = {}
        for src in self.files:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ClassDef) and \
                        src.has_marker("per-instruction", node):
                    self.per_instruction[node.name] = (
                        src, node, class_slots(node))


def class_slots(node: ast.ClassDef) -> Optional[Tuple[str, ...]]:
    """The class's literal ``__slots__`` strings, or None if absent."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "__slots__":
                    value = stmt.value
                    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                        elts = value.elts
                    elif isinstance(value, ast.Constant) and \
                            isinstance(value.value, str):
                        return (value.value,)
                    else:
                        return ()
                    return tuple(e.value for e in elts
                                 if isinstance(e, ast.Constant)
                                 and isinstance(e.value, str))
    return None


class Baseline:
    """Committed fingerprints of accepted pre-existing violations."""

    VERSION = 1

    def __init__(self, entries: Optional[List[dict]] = None,
                 path: Optional[str] = None):
        self.path = path
        self.entries = list(entries or [])
        self._fingerprints = {e["fingerprint"] for e in self.entries}

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls(path=path)
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("version") != cls.VERSION:
            raise ValueError(f"baseline {path}: unsupported version "
                             f"{data.get('version')!r}")
        return cls(data.get("entries", []), path=path)

    def suppresses(self, finding: Finding) -> bool:
        return finding.fingerprint in self._fingerprints

    @classmethod
    def from_findings(cls, findings: Iterable[Finding],
                      reason: str = "pre-existing") -> "Baseline":
        entries = [{"fingerprint": f.fingerprint, "rule": f.rule,
                    "path": _posix(f.path), "reason": reason,
                    "summary": f.message}
                   for f in sorted(findings,
                                   key=lambda f: (f.path, f.line, f.rule))]
        return cls(entries)

    def save(self, path: str) -> None:
        payload = {"version": self.VERSION, "entries": self.entries}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")


def _posix(path: str) -> str:
    return path.replace(os.sep, "/")


#: Directories never scanned: bytecode caches and generated artifact
#: trees (result cache, fuzz corpus) are not source.  Dot-prefixed
#: directories are skipped wholesale below; the cache/corpus names are
#: listed anyway so the exclusion survives a rename to a non-dot path.
EXCLUDED_DIRS = frozenset({"__pycache__", ".repro-cache",
                           ".fuzz-corpus", ".pytest_cache"})


def collect_files(paths: Sequence[str]) -> List[SourceFile]:
    """Every ``.py`` file under the given files/directories, sorted (the
    suite must itself be deterministic)."""
    seen = {}
    for root in paths:
        if os.path.isfile(root):
            seen[os.path.abspath(root)] = root
            continue
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in EXCLUDED_DIRS
                                 and not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    path = os.path.join(dirpath, name)
                    seen[os.path.abspath(path)] = path
    files = []
    for abspath in sorted(seen):
        with open(abspath, encoding="utf-8") as fh:
            text = fh.read()
        try:
            files.append(SourceFile(abspath, text,
                                    display_path=_posix(
                                        os.path.relpath(seen[abspath]))))
        except SyntaxError as exc:
            raise SystemExit(f"simcheck: cannot parse {seen[abspath]}: "
                             f"{exc}")
    return files


def run_simcheck(paths: Sequence[str],
                 include_fixtures: bool = False,
                 baseline: Optional[Baseline] = None,
                 select: Optional[Sequence[str]] = None,
                 ) -> Tuple[List[Finding], List[Finding]]:
    """Run the suite; returns ``(new_findings, suppressed_findings)``.

    ``suppressed_findings`` are those silenced by the baseline (inline
    ``allow`` comments are filtered earlier and never reported).
    """
    from simcheck.rules import ALL_RULES
    rules = [r for r in ALL_RULES
             if select is None or r.id in select]
    files = collect_files(paths)
    checked = [f for f in files if include_fixtures or not f.is_fixture]
    project = Project(checked)
    findings: List[Finding] = []
    for src in checked:
        for rule in rules:
            for finding in rule.check(src, project):
                if not src.is_allowed(finding.rule, finding.line):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    if baseline is None:
        return findings, []
    new = [f for f in findings if not baseline.suppresses(f)]
    suppressed = [f for f in findings if baseline.suppresses(f)]
    return new, suppressed


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m simcheck",
        description="Repo-specific static analysis: determinism, "
                    "hot-path discipline, and serialization invariants.")
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to scan "
                             "(default: src/ tests/)")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline file of accepted pre-existing "
                             "violations")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings too")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the "
                             "baseline file and exit 0")
    parser.add_argument("--include-fixtures", action="store_true",
                        help="also scan # simcheck-fixture files "
                             "(rule test data)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    args = parser.parse_args(argv)

    from simcheck.rules import ALL_RULES
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  [{rule.severity:7s}] {rule.title}")
        return 0

    select = args.select.split(",") if args.select else None
    if select:
        known = {r.id for r in ALL_RULES}
        unknown = sorted(set(select) - known)
        if unknown:
            print(f"simcheck: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    for path in args.paths:
        if not os.path.exists(path):
            print(f"simcheck: no such path: {path}", file=sys.stderr)
            return 2

    baseline = None
    if not args.no_baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except ValueError as exc:
            print(f"simcheck: {exc}", file=sys.stderr)
            return 2

    findings, suppressed = run_simcheck(
        args.paths, include_fixtures=args.include_fixtures,
        baseline=baseline, select=select)

    if args.write_baseline:
        Baseline.from_findings(findings).save(args.baseline)
        print(f"simcheck: baselined {len(findings)} finding(s) "
              f"-> {args.baseline}")
        return 0

    for finding in findings:
        print(finding.render())
    n_rules = len(select) if select else len(ALL_RULES)
    if findings:
        print(f"simcheck: {len(findings)} finding(s) "
              f"({len(suppressed)} baselined), {n_rules} rule(s)",
              file=sys.stderr)
        return 1
    print(f"simcheck: clean ({n_rules} rule(s), "
          f"{len(suppressed)} baselined finding(s))")
    return 0
