"""simcheck core: source loading, marker parsing, baselines, the runner.

The suite is deliberately simple machinery around :mod:`ast`:

* :class:`SourceFile` — one parsed ``.py`` file plus the simcheck marker
  comments found in it (``hotpath``, ``per-instruction``, ``allow=SCnnn``,
  and the ``# simcheck-fixture`` header that quarantines rule fixtures).
* :class:`Project` — a cross-file index built in a pre-pass (today: the
  ``per-instruction``-marked classes and their ``__slots__``), so rules
  can check construction sites in one module against a class defined in
  another.
* :class:`Baseline` — committed fingerprints of pre-existing violations.
  Fingerprints hash the *text* of the flagged line (not its number), so
  unrelated edits above a baselined finding do not un-suppress it.
* :func:`run_simcheck` / :func:`main` — collect files, run every rule,
  filter inline allows and the baseline, report ``path:line: SCnnn ...``.

Exit codes: 0 clean, 1 findings (or stale baseline entries under
``--strict-baseline``), 2 usage error / unparseable file / internal
error — so CI can tell "the tree has violations" from "the tool died".
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import os
import re
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default scan roots when the CLI is given no paths (repo-root relative).
DEFAULT_PATHS = ("src", "tests", "tools", "benchmarks")

#: Default committed baseline, next to this file.
BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "baseline.json")

_MARKER_RE = re.compile(r"#\s*simcheck:\s*([A-Za-z-]+)(?:=([A-Z0-9,]+))?")
_FIXTURE_RE = re.compile(r"#\s*simcheck-fixture\b")


class ParseFailure(Exception):
    """One or more scanned files could not be read or parsed.

    ``errors`` lists one pre-formatted message per bad file.  The CLI
    maps this to exit code 2: an unparseable tree is a broken *input*,
    not a lint finding, and CI must not confuse the two.
    """

    def __init__(self, errors: Sequence[str]):
        super().__init__("\n".join(errors))
        self.errors = list(errors)


class Finding:
    """One rule violation at one source line."""

    __slots__ = ("rule", "path", "line", "message", "severity",
                 "line_text")

    def __init__(self, rule: str, path: str, line: int, message: str,
                 severity: str = "error", line_text: str = ""):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.severity = severity
        self.line_text = line_text

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching: rule + file + the
        flagged line's text (whitespace-normalized).  Line *numbers* are
        deliberately absent so edits elsewhere in the file do not churn
        the baseline."""
        basis = "|".join((self.rule, _posix(self.path),
                          " ".join(self.line_text.split())))
        return hashlib.sha256(basis.encode()).hexdigest()[:16]

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.rule} "
                f"[{self.severity}] {self.message}")

    def __repr__(self) -> str:
        return f"<Finding {self.render()}>"


class SourceFile:
    """One parsed source file plus its simcheck marker comments."""

    def __init__(self, path: str, text: str, display_path: str = None):
        self.path = os.path.abspath(path)
        self.display_path = display_path if display_path is not None \
            else os.path.relpath(path)
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        #: True for rule-fixture files (scanned only on explicit request).
        self.is_fixture = any(_FIXTURE_RE.search(line)
                              for line in self.lines[:5])
        #: line -> set of rule ids allowed there (inline suppressions).
        self.allows: Dict[int, set] = {}
        #: marker name -> sorted line numbers where it appears.
        self.markers: Dict[str, List[int]] = {}
        for lineno, line in enumerate(self.lines, 1):
            for m in _MARKER_RE.finditer(line):
                name, arg = m.group(1), m.group(2)
                if name == "allow" and arg:
                    self.allows.setdefault(lineno, set()).update(
                        arg.split(","))
                else:
                    self.markers.setdefault(name, []).append(lineno)

    # -- marker helpers --------------------------------------------------------

    def has_marker(self, name: str, node: ast.AST) -> bool:
        """Is ``# simcheck: <name>`` attached to this def/class?

        A marker is attached when it sits on the ``def``/``class`` line
        itself, on the line directly above it, or on/above the first
        decorator.
        """
        lines = self.markers.get(name)
        if not lines:
            return False
        first = node.lineno
        for deco in getattr(node, "decorator_list", []):
            first = min(first, deco.lineno)
        return any(lineno in (first - 1, first, node.lineno)
                   for lineno in lines)

    def is_allowed(self, rule: str, lineno: int) -> bool:
        """Inline ``# simcheck: allow=SCnnn`` on the line or the line
        above suppresses the finding (the comment should say why)."""
        for at in (lineno, lineno - 1):
            if rule in self.allows.get(at, ()):
                return True
        return False

    def finding(self, rule: str, node_or_line, message: str,
                severity: str = "error") -> Finding:
        lineno = node_or_line if isinstance(node_or_line, int) \
            else node_or_line.lineno
        text = self.lines[lineno - 1] if 0 < lineno <= len(self.lines) \
            else ""
        return Finding(rule, self.display_path, lineno, message,
                       severity, text)

    @property
    def in_repro(self) -> bool:
        """Does this file belong to the simulator package proper?"""
        parts = _posix(self.path).split("/")
        return "repro" in parts and "src" in parts

    @property
    def is_test(self) -> bool:
        base = os.path.basename(self.path)
        return base.startswith("test_") or base == "conftest.py"


class Project:
    """Cross-file index shared by every rule invocation."""

    def __init__(self, files: Sequence[SourceFile]):
        self.files = list(files)
        #: class name -> (SourceFile, ClassDef, slots tuple or None)
        #: for every ``# simcheck: per-instruction``-marked class.
        self.per_instruction: Dict[str, Tuple[SourceFile, ast.ClassDef,
                                              Optional[Tuple[str, ...]]]]
        self.per_instruction = {}
        for src in self.files:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ClassDef) and \
                        src.has_marker("per-instruction", node):
                    self.per_instruction[node.name] = (
                        src, node, class_slots(node))
        self._graph = None
        self._effects = None

    # The interprocedural indexes are built on first use: a --select run
    # of the per-file rules never pays for whole-program analysis.

    @property
    def graph(self):
        """Lazily built :class:`simcheck.graph.CallGraph`."""
        if self._graph is None:
            from simcheck.graph import CallGraph
            self._graph = CallGraph(self.files)
        return self._graph

    @property
    def effects(self):
        """Lazily built :class:`simcheck.effects.EffectIndex`."""
        if self._effects is None:
            from simcheck.effects import EffectIndex
            self._effects = EffectIndex(self.graph)
        return self._effects


def class_slots(node: ast.ClassDef) -> Optional[Tuple[str, ...]]:
    """The class's literal ``__slots__`` strings, or None if absent."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "__slots__":
                    value = stmt.value
                    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                        elts = value.elts
                    elif isinstance(value, ast.Constant) and \
                            isinstance(value.value, str):
                        return (value.value,)
                    else:
                        return ()
                    return tuple(e.value for e in elts
                                 if isinstance(e, ast.Constant)
                                 and isinstance(e.value, str))
    return None


class Baseline:
    """Committed fingerprints of accepted pre-existing violations."""

    VERSION = 1

    def __init__(self, entries: Optional[List[dict]] = None,
                 path: Optional[str] = None):
        self.path = path
        self.entries = list(entries or [])
        self._fingerprints = {e["fingerprint"] for e in self.entries}

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls(path=path)
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("version") != cls.VERSION:
            raise ValueError(f"baseline {path}: unsupported version "
                             f"{data.get('version')!r}")
        return cls(data.get("entries", []), path=path)

    def suppresses(self, finding: Finding) -> bool:
        return finding.fingerprint in self._fingerprints

    @classmethod
    def from_findings(cls, findings: Iterable[Finding],
                      reason: str = "pre-existing") -> "Baseline":
        entries = [{"fingerprint": f.fingerprint, "rule": f.rule,
                    "path": _posix(f.path), "reason": reason,
                    "summary": f.message}
                   for f in sorted(findings,
                                   key=lambda f: (f.path, f.line, f.rule))]
        return cls(entries)

    def save(self, path: str) -> None:
        payload = {"version": self.VERSION, "entries": self.entries}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")


def _posix(path: str) -> str:
    return path.replace(os.sep, "/")


#: Directories never scanned: bytecode caches and generated artifact
#: trees (result cache, fuzz corpus) are not source.  Dot-prefixed
#: directories are skipped wholesale below; the cache/corpus names are
#: listed anyway so the exclusion survives a rename to a non-dot path.
EXCLUDED_DIRS = frozenset({"__pycache__", ".repro-cache",
                           ".fuzz-corpus", ".pytest_cache"})


def _load_source(item: Tuple[str, str]) -> Tuple[str, object]:
    """Read and parse one file: ``("ok", SourceFile)`` or ``("err", msg)``.

    Module-level (not a closure) so :func:`collect_files` can ship it to
    a :class:`~concurrent.futures.ProcessPoolExecutor` worker.  Errors
    come back as values rather than exceptions so a parallel run reports
    *every* bad file in one pass instead of dying on the first.
    """
    abspath, display = item
    try:
        with open(abspath, encoding="utf-8") as fh:
            text = fh.read()
        return "ok", SourceFile(abspath, text, display_path=display)
    except (SyntaxError, ValueError, OSError) as exc:
        return "err", f"simcheck: cannot parse {display}: {exc}"


def collect_files(paths: Sequence[str],
                  jobs: int = 1) -> List[SourceFile]:
    """Every ``.py`` file under the given files/directories, sorted (the
    suite must itself be deterministic).

    ``jobs > 1`` parses with a process pool.  ``pool.map`` preserves the
    submission order and the submission list is sorted, so the returned
    list — and therefore every downstream index, finding order, and
    fingerprint set — is bit-identical to a serial run.

    Raises :class:`ParseFailure` listing every unreadable/unparseable
    file.
    """
    seen = {}
    for root in paths:
        if os.path.isfile(root):
            seen[os.path.abspath(root)] = root
            continue
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in EXCLUDED_DIRS
                                 and not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    path = os.path.join(dirpath, name)
                    seen[os.path.abspath(path)] = path
    items = [(abspath, _posix(os.path.relpath(seen[abspath])))
             for abspath in sorted(seen)]
    if jobs > 1 and len(items) > 1:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_load_source, items))
    else:
        results = [_load_source(item) for item in items]
    errors = [payload for status, payload in results if status == "err"]
    if errors:
        raise ParseFailure(errors)
    return [payload for status, payload in results]


def run_simcheck(paths: Sequence[str],
                 include_fixtures: bool = False,
                 baseline: Optional[Baseline] = None,
                 select: Optional[Sequence[str]] = None,
                 jobs: int = 1,
                 ) -> Tuple[List[Finding], List[Finding]]:
    """Run the suite; returns ``(new_findings, suppressed_findings)``.

    ``suppressed_findings`` are those silenced by the baseline (inline
    ``allow`` comments are filtered earlier and never reported).
    ``jobs`` parallelizes the parse only (analysis shares one cross-file
    index and stays serial); output is identical for any jobs value.
    """
    from simcheck.rules import ALL_RULES
    rules = [r for r in ALL_RULES
             if select is None or r.id in select]
    files = collect_files(paths, jobs=jobs)
    checked = [f for f in files if include_fixtures or not f.is_fixture]
    project = Project(checked)
    findings: List[Finding] = []
    for src in checked:
        for rule in rules:
            for finding in rule.check(src, project):
                if not src.is_allowed(finding.rule, finding.line):
                    findings.append(finding)
    # Project-scope rules run once over the whole set and may anchor
    # findings in any scanned file; inline allows still apply.
    by_path = {src.display_path: src for src in checked}
    for rule in rules:
        if getattr(rule, "scope", "file") != "project":
            continue
        for finding in rule.check_project(project):
            src = by_path.get(finding.path)
            if src is None or \
                    not src.is_allowed(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    if baseline is None:
        return findings, []
    new = [f for f in findings if not baseline.suppresses(f)]
    suppressed = [f for f in findings if baseline.suppresses(f)]
    return new, suppressed


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m simcheck",
        description="Repo-specific static analysis: determinism, "
                    "hot-path discipline, and serialization invariants.")
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to scan "
                             "(default: src/ tests/ tools/ benchmarks/)")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline file of accepted pre-existing "
                             "violations")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings too")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the "
                             "baseline file and exit 0")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="drop baseline entries no current finding "
                             "matches, rewrite the file, and exit 0")
    parser.add_argument("--strict-baseline", action="store_true",
                        help="exit 1 when the baseline has stale "
                             "entries, even if the tree is clean")
    parser.add_argument("--include-fixtures", action="store_true",
                        help="also scan # simcheck-fixture files "
                             "(rule test data)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--format", choices=("text", "sarif"),
                        default="text",
                        help="report format (sarif: SARIF 2.1.0 for "
                             "code-scanning upload)")
    parser.add_argument("--output", default=None,
                        help="write the report here instead of stdout")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parse files with N worker processes "
                             "(output is identical for any N)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    args = parser.parse_args(argv)

    if args.jobs < 1:
        print("simcheck: --jobs must be >= 1", file=sys.stderr)
        return 2

    from simcheck.rules import ALL_RULES
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  [{rule.severity:7s}] {rule.title}")
        return 0

    select = args.select.split(",") if args.select else None
    if select:
        known = {r.id for r in ALL_RULES}
        unknown = sorted(set(select) - known)
        if unknown:
            print(f"simcheck: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    for path in args.paths:
        if not os.path.exists(path):
            print(f"simcheck: no such path: {path}", file=sys.stderr)
            return 2

    baseline = None
    if args.prune_baseline or \
            not (args.no_baseline or args.write_baseline):
        try:
            baseline = Baseline.load(args.baseline)
        except ValueError as exc:
            print(f"simcheck: {exc}", file=sys.stderr)
            return 2

    try:
        findings, suppressed = run_simcheck(
            args.paths, include_fixtures=args.include_fixtures,
            baseline=baseline, select=select, jobs=args.jobs)
    except ParseFailure as exc:
        for err in exc.errors:
            print(err, file=sys.stderr)
        return 2
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"simcheck: internal error: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(findings).save(args.baseline)
        print(f"simcheck: baselined {len(findings)} finding(s) "
              f"-> {args.baseline}")
        return 0

    # A baseline entry is stale when no current finding — suppressed or
    # not — carries its fingerprint: the violation it grandfathers was
    # fixed (or its line edited, which re-surfaces the finding anyway).
    matched = {f.fingerprint for f in findings} | \
              {f.fingerprint for f in suppressed}
    if args.prune_baseline:
        kept = [e for e in baseline.entries
                if e["fingerprint"] in matched]
        dropped = len(baseline.entries) - len(kept)
        Baseline(kept).save(args.baseline)
        print(f"simcheck: pruned {dropped} stale baseline entr"
              f"{'y' if dropped == 1 else 'ies'} ({len(kept)} kept) "
              f"-> {args.baseline}")
        return 0

    stale = [] if baseline is None else \
        [e for e in baseline.entries if e["fingerprint"] not in matched]
    for entry in stale:
        print(f"simcheck: warning: stale baseline entry "
              f"{entry['fingerprint']} ({entry.get('rule', '?')} in "
              f"{entry.get('path', '?')}) matches no current finding; "
              f"run --prune-baseline", file=sys.stderr)

    if args.format == "sarif":
        from simcheck.sarif import render_sarif
        report = render_sarif(findings, ALL_RULES)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(report)
        else:
            sys.stdout.write(report)
    else:
        out = open(args.output, "w", encoding="utf-8") \
            if args.output else sys.stdout
        try:
            for finding in findings:
                print(finding.render(), file=out)
        finally:
            if out is not sys.stdout:
                out.close()

    n_rules = len(select) if select else len(ALL_RULES)
    if findings:
        print(f"simcheck: {len(findings)} finding(s) "
              f"({len(suppressed)} baselined), {n_rules} rule(s)",
              file=sys.stderr)
        return 1
    if args.strict_baseline and stale:
        print(f"simcheck: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} "
              f"(--strict-baseline)", file=sys.stderr)
        return 1
    print(f"simcheck: clean ({n_rules} rule(s), "
          f"{len(suppressed)} baselined finding(s))",
          file=sys.stderr if args.format == "sarif" and not args.output
          else sys.stdout)
    return 0
