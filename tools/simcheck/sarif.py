"""SARIF 2.1.0 emitter for simcheck findings.

GitHub's code-scanning upload (``github/codeql-action/upload-sarif``)
turns this report into inline PR annotations, so a new SC violation
shows up on the offending line of the diff instead of only in the lint
job's log.  The emitter is deliberately minimal-but-valid:

* one run, one ``tool.driver`` listing every registered rule (id,
  title, default severity level), so rule metadata renders in the UI;
* one ``result`` per finding, carrying the rule index, the message, a
  single physical location (posix-relative URI + start line), and the
  finding's baseline fingerprint under ``partialFingerprints`` — the
  same line-text hash the committed baseline uses, which keeps GitHub's
  alert dedup stable across unrelated edits, for the same reason the
  baseline is.

Severity mapping: simcheck ``error`` -> SARIF ``error``, ``warning`` ->
``warning`` (SARIF's other levels are unused).
"""

from __future__ import annotations

import json
from typing import List, Sequence

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemas/sarif-schema-2.1.0.json")
SARIF_VERSION = "2.1.0"


def _rules_metadata(rules) -> List[dict]:
    return [
        {
            "id": rule.id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title},
            "defaultConfiguration": {"level": rule.severity},
        }
        for rule in rules
    ]


def to_sarif(findings: Sequence, rules) -> dict:
    """The SARIF log dict for one run over ``findings``."""
    rule_index = {rule.id: i for i, rule in enumerate(rules)}
    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule,
            "ruleIndex": rule_index.get(f.rule, -1),
            "level": f.severity,
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": f.line},
                },
            }],
            "partialFingerprints": {
                "simcheckFingerprint/v1": f.fingerprint,
            },
        })
    from simcheck import __version__
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simcheck",
                    "version": __version__,
                    "rules": _rules_metadata(rules),
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"description": {
                    "text": "repository root"}},
            },
            "results": results,
        }],
    }


def render_sarif(findings: Sequence, rules) -> str:
    """The SARIF log as a JSON string (sorted keys, trailing newline)."""
    return json.dumps(to_sarif(findings, rules), indent=2,
                      sort_keys=True) + "\n"
