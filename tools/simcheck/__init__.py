"""simcheck — repo-specific static analysis for the repro simulator.

Machine-checks the conventions the reproduction's headline claims rest
on (DESIGN.md §8): bit-identical determinism across techniques, the
≥2x hot path with zero-cost-when-disabled observability, and lossless
content-addressed serialization.  Run it from the repo root::

    python -m simcheck src/ tests/ tools/ benchmarks/

Rules (each an AST visitor with fixture-tested good/bad examples under
``tests/data/simcheck/``):

=====  ==============================================================
SC001  determinism: no unseeded RNG, wall clock, ``id()``/``hash()``,
       set or unsorted-filesystem iteration in ``src/repro/``
SC002  hot-path discipline for ``# simcheck: hotpath`` functions
SC003  exec-handler safety: generated handlers pass an AST whitelist
SC004  cache-key completeness for job-spec dataclasses
SC005  round-trip completeness for ``to_dict``/``from_dict`` classes
SC006  ``__slots__`` coverage for per-instruction classes
SC007  async-safety: no blocking work reachable from service
       coroutines; no sync lock held across ``await``
SC008  snapshot completeness: ``state_dict`` covers mutable fields,
       ``capture`` covers Simulator components
SC009  registry closure over ``JOB_KINDS``: registered kinds are
       complete + CLI-reachable, dispatched kinds are registered
SC010  transitive hot-path discipline through the call graph
=====  ==============================================================

SC001–SC006 are per-file AST rules; SC007–SC010 run on the
whole-program call graph and effect index (:mod:`simcheck.graph`,
:mod:`simcheck.effects`) built lazily over the scanned set.

Suppressions: an inline ``# simcheck: allow=SCnnn <why>`` on (or above)
the flagged line, or an entry in the committed baseline
(``tools/simcheck/baseline.json``, regenerated with
``--write-baseline``, pruned with ``--prune-baseline``).  CI runs the
suite in the ``lint`` job next to ``ruff`` and ``mypy`` and uploads the
``--format sarif`` report for inline annotations; see CONTRIBUTING.md
("Lint gate").
"""

from simcheck.engine import (Baseline, Finding, ParseFailure, Project,
                             SourceFile, collect_files, main,
                             run_simcheck)
from simcheck.rules import ALL_RULES, register

__version__ = "2.0.0"

__all__ = ["ALL_RULES", "Baseline", "Finding", "ParseFailure",
           "Project", "SourceFile", "collect_files", "main", "register",
           "run_simcheck", "__version__"]
