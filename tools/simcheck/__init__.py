"""simcheck — repo-specific static analysis for the repro simulator.

Machine-checks the conventions the reproduction's headline claims rest
on (DESIGN.md §8): bit-identical determinism across techniques, the
≥2x hot path with zero-cost-when-disabled observability, and lossless
content-addressed serialization.  Run it from the repo root::

    python -m simcheck src/ tests/

Rules (each an AST visitor with fixture-tested good/bad examples under
``tests/data/simcheck/``):

=====  ==============================================================
SC001  determinism: no unseeded RNG, wall clock, ``id()``/``hash()``,
       set or unsorted-filesystem iteration in ``src/repro/``
SC002  hot-path discipline for ``# simcheck: hotpath`` functions
SC003  exec-handler safety: generated handlers pass an AST whitelist
SC004  cache-key completeness for job-spec dataclasses
SC005  round-trip completeness for ``to_dict``/``from_dict`` classes
SC006  ``__slots__`` coverage for per-instruction classes
=====  ==============================================================

Suppressions: an inline ``# simcheck: allow=SCnnn <why>`` on (or above)
the flagged line, or an entry in the committed baseline
(``tools/simcheck/baseline.json``, regenerated with
``--write-baseline``).  CI runs the suite in the ``lint`` job next to
``ruff`` and ``mypy``; see CONTRIBUTING.md ("Lint gate").
"""

from simcheck.engine import (Baseline, Finding, Project, SourceFile,
                             collect_files, main, run_simcheck)
from simcheck.rules import ALL_RULES, register

__version__ = "1.0.0"

__all__ = ["ALL_RULES", "Baseline", "Finding", "Project", "SourceFile",
           "collect_files", "main", "register", "run_simcheck",
           "__version__"]
