"""Project-wide module index and conservative call graph.

The per-file rules (SC001–SC006) see one AST at a time; the
interprocedural rules (SC007–SC010) need to know *who calls whom across
module boundaries*.  This module builds that view from the same parsed
:class:`~simcheck.engine.SourceFile` objects, with no imports executed:

* **Module index** — every scanned file is assigned a dotted module name
  derived from its path (``src/repro/service/daemon.py`` →
  ``repro.service.daemon``, ``tools/simcheck/graph.py`` →
  ``simcheck.graph``), and its ``import``/``from … import`` statements
  (function-local ones included) are recorded as an alias → target map.
* **Class index** — classes with their directly defined methods, their
  base-class links (project classes only), and an *attribute type map*:
  ``self.x`` is given a class type when ``__init__`` (or any method)
  assigns it from an annotated parameter, a resolvable constructor call,
  or an annotated ``self.x: Optional[C]`` declaration.
* **Call graph** — edges from each function to every call it makes that
  resolves to a project function: plain names (local defs, module
  functions, from-imports, nested defs), ``self.m()`` / ``cls.m()``
  (walking project base classes), ``module.f()`` / ``module.C()`` via
  the import map, and ``obj.m()`` when ``obj`` is a parameter, local, or
  ``self`` attribute with a tracked class type.  Constructor calls edge
  to ``__init__``.

Where it is conservative (documented in DESIGN.md §8): calls through
untracked receivers produce **no** edge (they are recorded as
*unresolved* with their attribute name, so rules can blacklist specific
method names like ``Future.result``); values passed as arguments —
``asyncio.to_thread(self._lookup, job)`` — are references, not calls,
and therefore never produce an edge, which is exactly what makes
``to_thread``/``run_in_executor`` the sanctioned blocking-call escape
hatch; lambdas and calls through containers are invisible.  The graph
over-approximates nothing and under-approximates dynamic dispatch — the
rules built on it are tuned so that the *checked* properties (effects of
statically named callees) stay sound for the patterns this repo uses.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from simcheck.rules._util import dotted_name, scoped_walk

#: Wrapper calls that *sanction* blocking work from async code: their
#: function arguments run on an executor thread, never the event loop.
SANCTIONED_WRAPPERS = ("to_thread", "run_in_executor")


def module_name_for(posix_path: str) -> str:
    """Dotted module name for a scanned file path.

    ``src`` and ``tools`` are the repo's two import roots (``PYTHONPATH=src``
    plus the repo-root ``simcheck`` bootstrap stub); anything else —
    fixtures, scratch files in tests — is treated as a top-level module
    named after its stem.
    """
    parts = posix_path.split("/")
    for root in ("src", "tools"):
        if root in parts:
            idx = len(parts) - 1 - parts[::-1].index(root)
            tail = parts[idx + 1:]
            break
    else:
        tail = parts[-1:]
    if not tail:
        tail = parts[-1:]
    if tail[-1].endswith(".py"):
        tail = tail[:-1] + [tail[-1][:-3]]
    if tail and tail[-1] == "__init__":
        tail = tail[:-1]
    return ".".join(tail) or posix_path


class FuncNode:
    """One (async) function or method definition."""

    __slots__ = ("qname", "node", "src", "module", "cls", "parent",
                 "is_async")

    def __init__(self, qname, node, src, module, cls=None, parent=None):
        self.qname = qname
        self.node = node
        self.src = src
        self.module = module            # ModuleNode
        self.cls = cls                  # ClassNode or None
        self.parent = parent            # enclosing FuncNode or None
        self.is_async = isinstance(node, ast.AsyncFunctionDef)

    @property
    def name(self) -> str:
        return self.node.name

    def __repr__(self) -> str:
        return f"<FuncNode {self.qname}>"


class ClassNode:
    """One class definition with method and attribute-type indexes."""

    __slots__ = ("qname", "node", "src", "module", "methods", "bases",
                 "attr_types")

    def __init__(self, qname, node, src, module):
        self.qname = qname
        self.node = node
        self.src = src
        self.module = module
        self.methods: Dict[str, FuncNode] = {}
        #: Base-class ClassNodes that resolved inside the project.
        self.bases: List["ClassNode"] = []
        #: ``self.<attr>`` → ClassNode (or the sentinel string
        #: ``"threading-lock"`` for synchronous lock objects).
        self.attr_types: Dict[str, object] = {}

    @property
    def name(self) -> str:
        return self.node.name

    def resolve_method(self, name: str,
                       _seen=None) -> Optional[FuncNode]:
        """Method lookup through the project-visible base chain."""
        if _seen is None:
            _seen = set()
        if self.qname in _seen:
            return None
        _seen.add(self.qname)
        if name in self.methods:
            return self.methods[name]
        for base in self.bases:
            found = base.resolve_method(name, _seen)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:
        return f"<ClassNode {self.qname}>"


class ModuleNode:
    """One scanned file as a module: defs, classes, imports."""

    __slots__ = ("name", "src", "functions", "classes", "imports",
                 "imported_modules")

    def __init__(self, name, src):
        self.name = name
        self.src = src
        self.functions: Dict[str, FuncNode] = {}    # top-level defs
        self.classes: Dict[str, ClassNode] = {}
        #: local alias → dotted import target (``"repro.engine.job"`` for
        #: ``import repro.engine.job``; ``"repro.engine.job.SimJob"`` for
        #: ``from repro.engine.job import SimJob``), function-local
        #: imports included.
        self.imports: Dict[str, str] = {}
        #: Every module this file imports (transport for reachability).
        self.imported_modules: set = set()

    def __repr__(self) -> str:
        return f"<ModuleNode {self.name}>"


#: Calls to ``threading`` synchronization primitives: holding one of
#: these across an ``await`` starves the event loop (SC007).
_SYNC_LOCK_CTORS = {"Lock", "RLock", "Semaphore", "BoundedSemaphore",
                    "Condition"}


def _is_sync_lock_ctor(call: ast.AST, imports: Dict[str, str]) -> bool:
    if not isinstance(call, ast.Call):
        return False
    name = dotted_name(call.func) or ""
    parts = name.split(".")
    if len(parts) == 2 and parts[0] == "threading" and \
            parts[1] in _SYNC_LOCK_CTORS:
        return True
    if len(parts) == 1 and parts[0] in _SYNC_LOCK_CTORS and \
            imports.get(parts[0], "").startswith("threading."):
        return True
    return False


class CallGraph:
    """Whole-program index + call edges over the scanned files."""

    def __init__(self, files: Sequence):
        self.modules: Dict[str, ModuleNode] = {}
        self.functions: Dict[str, FuncNode] = {}
        self.classes: Dict[str, ClassNode] = {}
        #: caller qname → [(ast.Call, callee FuncNode)]
        self.edges: Dict[str, List[Tuple[ast.Call, FuncNode]]] = {}
        #: caller qname → [(ast.Call, attr name, awaited?)] for calls the
        #: resolver could not bind to a project function.
        self.unresolved: Dict[str, List[Tuple[ast.Call, str, bool]]] = {}

        for src in files:
            self._index_module(src)
        self._link_bases()
        for cls in self.classes.values():
            self._infer_attr_types(cls)
        for func in self.functions.values():
            self._resolve_calls(func)

    # -- pass 1: indexing --------------------------------------------------------

    def _index_module(self, src) -> None:
        mod = ModuleNode(module_name_for(src.display_path), src)
        # Last writer wins on duplicate module names (fixture scratch
        # trees); real src/tools paths are unique.
        self.modules[mod.name] = mod
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    mod.imports[local] = alias.name if alias.asname \
                        else alias.name.split(".")[0]
                    if alias.asname:
                        mod.imports[alias.asname] = alias.name
                    mod.imported_modules.add(alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module and \
                    node.level == 0:
                mod.imported_modules.add(node.module)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    mod.imports[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"
        for stmt in src.tree.body:
            self._index_stmt(stmt, mod, cls=None, parent=None,
                             prefix=mod.name)

    def _index_stmt(self, stmt, mod, cls, parent, prefix) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qname = f"{prefix}.{stmt.name}"
            func = FuncNode(qname, stmt, mod.src, mod, cls=cls,
                            parent=parent)
            self.functions[qname] = func
            if cls is not None and parent is None:
                cls.methods[stmt.name] = func
            elif parent is None:
                mod.functions[stmt.name] = func
            for inner in stmt.body:
                self._index_stmt(inner, mod, cls=None, parent=func,
                                 prefix=qname)
        elif isinstance(stmt, ast.ClassDef):
            qname = f"{prefix}.{stmt.name}"
            node = ClassNode(qname, stmt, mod.src, mod)
            self.classes[qname] = node
            if cls is None and parent is None:
                mod.classes[stmt.name] = node
            for inner in stmt.body:
                self._index_stmt(inner, mod, cls=node, parent=None,
                                 prefix=qname)
        elif isinstance(stmt, (ast.If, ast.Try, ast.With,
                               ast.For, ast.While)):
            for inner in ast.iter_child_nodes(stmt):
                if isinstance(inner, (ast.FunctionDef,
                                      ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    self._index_stmt(inner, mod, cls=cls, parent=parent,
                                     prefix=prefix)

    # -- pass 2: name resolution -------------------------------------------------

    def resolve_name(self, mod: ModuleNode, name: str):
        """Resolve a dotted name in a module's scope to a
        ``ClassNode`` / ``FuncNode`` / ``ModuleNode``, or None."""
        parts = name.split(".")
        head = parts[0]
        target: Optional[object] = None
        if head in mod.classes:
            target = mod.classes[head]
        elif head in mod.functions:
            target = mod.functions[head]
        elif head in mod.imports:
            target = self._resolve_import(mod.imports[head])
        elif head in self.modules:
            target = self.modules[head]
        for attr in parts[1:]:
            if isinstance(target, ModuleNode):
                if attr in target.classes:
                    target = target.classes[attr]
                elif attr in target.functions:
                    target = target.functions[attr]
                elif f"{target.name}.{attr}" in self.modules:
                    target = self.modules[f"{target.name}.{attr}"]
                else:
                    return None
            elif isinstance(target, ClassNode):
                target = target.resolve_method(attr)
            else:
                return None
        return target

    def _resolve_import(self, dotted: str):
        """An import target as a ModuleNode / ClassNode / FuncNode."""
        if dotted in self.modules:
            return self.modules[dotted]
        mod_name, _, attr = dotted.rpartition(".")
        if mod_name in self.modules:
            owner = self.modules[mod_name]
            if attr in owner.classes:
                return owner.classes[attr]
            if attr in owner.functions:
                return owner.functions[attr]
        return None

    def find_class(self, name: str) -> Optional[ClassNode]:
        """Any project class with this bare name (fixture fallback for
        registry entries whose module is not in the scanned set);
        lowest qname wins so lookup order is deterministic."""
        matches = sorted((qname for qname, cls in self.classes.items()
                          if cls.name == name))
        return self.classes[matches[0]] if matches else None

    def _link_bases(self) -> None:
        for cls in self.classes.values():
            for base in cls.node.bases:
                name = dotted_name(base)
                if not name:
                    continue
                resolved = self.resolve_name(cls.module, name)
                if isinstance(resolved, ClassNode):
                    cls.bases.append(resolved)

    # -- pass 3: attribute types -------------------------------------------------

    def _annotation_class(self, mod: ModuleNode,
                          anno) -> Optional[ClassNode]:
        """``C`` / ``Optional[C]`` / ``"C"`` → ClassNode, best effort."""
        if anno is None:
            return None
        if isinstance(anno, ast.Constant) and isinstance(anno.value, str):
            try:
                anno = ast.parse(anno.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(anno, ast.Subscript):
            outer = dotted_name(anno.value) or ""
            if outer.split(".")[-1] == "Optional":
                anno = anno.slice
            else:
                return None
        name = dotted_name(anno)
        if not name:
            return None
        resolved = self.resolve_name(mod, name)
        return resolved if isinstance(resolved, ClassNode) else None

    def _infer_attr_types(self, cls: ClassNode) -> None:
        for method in cls.methods.values():
            params: Dict[str, Optional[ClassNode]] = {}
            args = method.node.args
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                params[arg.arg] = self._annotation_class(
                    cls.module, arg.annotation)
            for node in scoped_walk(method.node):
                target = None
                value = None
                if isinstance(node, ast.Assign) and \
                        len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                attr = target.attr
                if attr in cls.attr_types:
                    continue
                if isinstance(node, ast.AnnAssign):
                    anno_cls = self._annotation_class(cls.module,
                                                      node.annotation)
                    if anno_cls is not None:
                        cls.attr_types[attr] = anno_cls
                        continue
                if _is_sync_lock_ctor(value, cls.module.imports):
                    cls.attr_types[attr] = "threading-lock"
                elif isinstance(value, ast.Name) and \
                        params.get(value.id) is not None:
                    cls.attr_types[attr] = params[value.id]
                elif isinstance(value, ast.Call):
                    name = dotted_name(value.func)
                    if name:
                        resolved = self.resolve_name(cls.module, name)
                        if isinstance(resolved, ClassNode):
                            cls.attr_types[attr] = resolved

    # -- pass 4: call edges ------------------------------------------------------

    def _local_env(self, func: FuncNode) -> Dict[str, object]:
        """name → ClassNode / ``"threading-lock"`` for the function's
        annotated parameters and simple local assignments."""
        env: Dict[str, object] = {}
        mod = func.module
        args = func.node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            cls = self._annotation_class(mod, arg.annotation)
            if cls is not None:
                env[arg.arg] = cls
        if func.cls is not None:
            env["self"] = func.cls
            env["cls"] = func.cls
        for node in scoped_walk(func.node):
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            name, value = node.targets[0].id, node.value
            if name in env:
                continue
            if _is_sync_lock_ctor(value, mod.imports):
                env[name] = "threading-lock"
            elif isinstance(value, ast.Attribute) and \
                    isinstance(value.value, ast.Name) and \
                    value.value.id == "self" and func.cls is not None:
                typ = func.cls.attr_types.get(value.attr)
                if typ is not None:
                    env[name] = typ
            elif isinstance(value, ast.Call):
                vname = dotted_name(value.func)
                if vname:
                    resolved = self.resolve_name(mod, vname)
                    if isinstance(resolved, ClassNode):
                        env[name] = resolved
        return env

    def _resolve_calls(self, func: FuncNode) -> None:
        env = self._local_env(func)
        awaited = {id(node.value) for node in ast.walk(func.node)
                   if isinstance(node, ast.Await)}
        edges: List[Tuple[ast.Call, FuncNode]] = []
        unresolved: List[Tuple[ast.Call, str, bool]] = []
        for node in scoped_walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            target = self._resolve_call_target(func, env, node)
            if isinstance(target, FuncNode):
                edges.append((node, target))
            elif isinstance(target, ClassNode):
                init = target.resolve_method("__init__")
                if init is not None:
                    edges.append((node, init))
            elif isinstance(node.func, ast.Attribute):
                unresolved.append((node, node.func.attr,
                                   id(node) in awaited))
        if edges:
            self.edges[func.qname] = edges
        if unresolved:
            self.unresolved[func.qname] = unresolved

    def _resolve_call_target(self, func: FuncNode, env, call: ast.Call):
        fn = call.func
        if isinstance(fn, ast.Name):
            # Nested defs in the enclosing function chain win first.
            scope = func
            while scope is not None:
                nested = f"{scope.qname}.{fn.id}"
                if nested in self.functions:
                    return self.functions[nested]
                scope = scope.parent
            if fn.id in env and isinstance(env[fn.id], ClassNode):
                return env[fn.id]
            return self.resolve_name(func.module, fn.id)
        if not isinstance(fn, ast.Attribute):
            return None
        name = dotted_name(fn)
        if name:
            parts = name.split(".")
            head = env.get(parts[0])
            if isinstance(head, ClassNode):
                if len(parts) == 2:
                    return head.resolve_method(parts[1])
                if len(parts) == 3:
                    attr_type = head.attr_types.get(parts[1])
                    if isinstance(attr_type, ClassNode):
                        return attr_type.resolve_method(parts[2])
                return None
            return self.resolve_name(func.module, name)
        # Receiver is an expression (call result, subscript, …): only a
        # method-name record survives, for the unresolved blacklists.
        return None

    # -- queries -----------------------------------------------------------------

    def local_types(self, func: FuncNode) -> Dict[str, object]:
        """The resolver's local type view of one function (parameters,
        ``self``/``cls``, simple locals) — public for the rules."""
        return self._local_env(func)

    def functions_in(self, src) -> List[FuncNode]:
        """FuncNodes defined in one SourceFile, in definition order."""
        return sorted((f for f in self.functions.values()
                       if f.src is src),
                      key=lambda f: f.node.lineno)

    def calls_in(self, func: FuncNode):
        """Resolved (call, callee) edges of one function."""
        return self.edges.get(func.qname, ())

    def unresolved_in(self, func: FuncNode):
        """Unresolved attribute calls of one function."""
        return self.unresolved.get(func.qname, ())

    def module_reachable_from(self, root: str) -> set:
        """Transitive closure of project imports starting at ``root``
        (prefix matching: importing ``a.b`` marks ``a.b`` and ``a``)."""
        seen: set = set()
        todo = [root]
        while todo:
            name = todo.pop()
            if name in seen or name not in self.modules:
                continue
            seen.add(name)
            for imported in self.modules[name].imported_modules:
                todo.append(imported)
                # ``from a.b import c`` may name a module a.b.c.
                for other in self.modules:
                    if other.startswith(imported + "."):
                        todo.append(other)
        return seen
