"""SC003 — exec-handler safety for the generated instruction handlers.

The tree has exactly two sanctioned ``exec`` sites:

* ``repro.functional.emulator._build_handlers`` renders per-opcode
  ALU/branch handler source from string templates (``{expr}``/``{test}``
  substitution) so executing an instruction costs a single flat call;
* ``repro.functional.superblock._compile_block`` compiles the
  per-basic-block superhandlers — the functional block variants
  (``superblock.py``'s own template tables), the timing superhandlers
  (``repro.core.timingblock.TIMING_TEMPLATES``) and the wrong-path
  stream superhandlers (``repro.wrongpath.streamblock``'s
  ``STREAM_TEMPLATES``) all funnel their rendered source through it.

That speed trick is only safe while the generated code stays trivially
auditable, so this rule:

* statically re-renders every handler template × substitution pair it
  can resolve (direct ``gen(op, TEMPLATE, kw=const)`` calls and one
  level of ``def alu(op, expr): gen(op, ALU, expr=expr)``-style
  wrappers) and checks the resulting AST against a whitelist — no
  imports, no global or nonlocal writes, no attribute access outside
  the declared ``emu``/``ins`` namespace, no calls except the
  arithmetic helpers;
* re-renders every *block* statement template (the module-level
  template tables of the three superhandler modules) with dummy
  substitutions and checks each against that module's declared
  name/call/attribute whitelist (``BLOCK_PROFILES``) — a template the
  profile cannot account for is a violation, as is a profiled table
  that has gone missing or non-literal;
* flags any ``exec``/``eval`` call outside the two sanctioned sites
  anywhere in ``src/repro/`` — new exec sites need their own audit
  story before they can exist;
* flags substitutions it cannot resolve to a constant (an unverifiable
  template is treated as a violation, not a pass).
"""

from __future__ import annotations

import ast

from simcheck.rules import in_scope, register
from simcheck.rules._util import dotted_name

#: Functions generated handlers may call.
ALLOWED_CALLS = {"_s32", "_div", "_rem", "int", "abs", "min", "max"}

#: Attribute namespace the handlers may touch (load or store).
ALLOWED_ATTRS = {
    "emu": {"x", "f", "_taken", "_mem_addr"},
    "ins": {"rs1", "rs2", "rd", "imm", "pc", "target"},
}

#: Globals the rendered code may read (module ns handed to exec + locals
#: the templates themselves bind).
ALLOWED_NAMES = {"MASK", "INT_MIN", "_s32", "_div", "_rem",
                 "INSTRUCTION_SIZE", "emu", "ins", "x", "f", "a", "b",
                 "i", "value", "run", "int", "abs", "min", "max",
                 "True", "False", "None"}

#: Names the rendered code may bind.
ALLOWED_STORES = {"run", "x", "f", "a", "b", "i", "value"}

_FORBIDDEN_NODES = (ast.Import, ast.ImportFrom, ast.Global,
                    ast.Nonlocal, ast.ClassDef, ast.Lambda, ast.Await,
                    ast.Yield, ast.YieldFrom, ast.Try, ast.With,
                    ast.Delete, ast.Starred)


def _audit_generated(source: str) -> list:
    """Whitelist problems with one rendered handler source."""
    problems = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [f"rendered handler does not parse: {exc.msg}"]
    for node in ast.walk(tree):
        if isinstance(node, _FORBIDDEN_NODES):
            problems.append(
                f"forbidden construct {type(node).__name__}")
        elif isinstance(node, ast.Attribute):
            base = node.value
            if not (isinstance(base, ast.Name)
                    and base.id in ALLOWED_ATTRS
                    and node.attr in ALLOWED_ATTRS[base.id]):
                problems.append(
                    f"attribute access outside the declared namespace: "
                    f"`{dotted_name(node) or node.attr}`")
        elif isinstance(node, ast.Call):
            func = node.func
            if not (isinstance(func, ast.Name)
                    and func.id in ALLOWED_CALLS):
                problems.append(
                    f"call outside the whitelist: "
                    f"`{dotted_name(func) or '?'}()`")
        elif isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Store):
                if node.id not in ALLOWED_STORES:
                    problems.append(f"binds disallowed name "
                                    f"`{node.id}`")
            elif node.id not in ALLOWED_NAMES:
                problems.append(f"reads undeclared name `{node.id}`")
        elif isinstance(node, ast.Subscript) and \
                isinstance(node.ctx, ast.Store):
            if not (isinstance(node.value, ast.Name)
                    and node.value.id in ALLOWED_STORES):
                problems.append("subscript store outside x/f register "
                                "files")
    return problems


# ---------------------------------------------------------------------------
# Block superhandler audit (superblock / timingblock / streamblock).
#
# The three block-rendering modules keep their statement templates in
# module-level tables; rendering only substitutes literals (integers,
# or the handful of whitelisted names below).  SC003 re-renders every
# template with dummy substitutions and checks the AST against the
# owning module's profile.  A profiled table that is missing or not a
# static string literal is itself a violation — the audit must never
# silently skip a template it cannot see.
# ---------------------------------------------------------------------------

class _DummySubst(dict):
    """Placeholder values for re-rendering: names where the renderer
    substitutes names, a positive integer everywhere else."""

    def __missing__(self, key):
        return "1"


_DUMMY = _DummySubst(
    fu="alu",        # port-group name (string-subscripts port_hot)
    mem="addr",      # record tails: "addr" or "None"
    taken="False",   # record tails: "True"/"False"
    next="t",        # jalr renders the computed target name
    fimm="1.0",      # fli immediate (repr of a float)
    i="0",           # instruction-object binding suffix (_I0)
    fwd="n_fwd",     # timing tail: forward counter name or 0
)

#: AST shapes that may never appear in rendered block code (a superset
#: of the handler list minus none — blocks add no new statement kinds).
_BLOCK_FORBIDDEN = _FORBIDDEN_NODES

#: path-suffix -> audit profile.  ``tables`` lists the module-level
#: template tables (dict-of-str or plain str constants); the remaining
#: sets whitelist what the rendered ASTs may contain.
BLOCK_PROFILES = {
    "repro/functional/superblock.py": {
        "tables": ("CORRECT_TEMPLATES", "WP_STORE_TEMPLATES",
                   "BRANCH_TESTS", "PROLOGUE_MEM", "DI_TAIL",
                   "WR_TAIL", "WP_ITEM_TAIL", "RETURN_NEXT"),
        "names": {"emu", "x", "f", "append", "seq", "addr", "mw",
                  "mw_get", "sh", "idx", "a", "b", "v", "t", "di",
                  "r", "it", "_new", "_DI", "_WR", "_WP", "_I0",
                  "_s32", "_div", "_rem", "_MA", "_MF", "_INF",
                  "_NINF", "_NAN", "_b2f", "_f2b", "int", "abs",
                  "min", "max", "float"},
        "stores": {"a", "b", "v", "addr", "sh", "idx", "t", "di",
                   "r", "it", "mw", "mw_get"},
        "substores": {"x", "f", "mw"},
        "calls": {"_s32", "_div", "_rem", "min", "max", "abs", "int",
                  "float", "mw_get", "append", "_new", "_MA", "_MF",
                  "_b2f", "_f2b"},
        "dotted_calls": set(),
        "attrs": {"emu.memory", "emu.memory._words", "mw.get"},
        "attr_stores": {"di.seq", "di.instr", "di.pc", "di.next_pc",
                        "di.taken", "di.mem_addr", "di.wp_trace",
                        "r.instr", "r.pc", "r.mem_addr", "r.next_pc",
                        "it.instr", "it.pc", "it.mem_addr"},
        "attrs_any": set(),
    },
    "repro/core/timingblock.py": {
        "tables": ("TIMING_TEMPLATES",),
        "names": {"buf", "i", "regready", "fetch_cycle", "fetch_used",
                  "disp_cycle", "disp_used", "com_cycle", "com_used",
                  "cur_line", "last_retire", "rob_rel", "rob_popleft",
                  "rob_append", "lq_rel", "lq_popleft", "lq_append",
                  "sq_rel", "sq_popleft", "sq_append", "sb_get",
                  "store_buffer", "access_data", "l1i_access",
                  "port_hot", "penalty", "fetch_c", "dispatch_req",
                  "oldest", "dispatch_c", "ready", "t", "best_cycle",
                  "issue_c", "a", "b", "c", "free_alu", "addr",
                  "drain", "n_fwd", "complete", "retire_req",
                  "retire_c", "len", "min"},
        "stores": {"penalty", "fetch_cycle", "fetch_used", "fetch_c",
                   "dispatch_req", "oldest", "disp_cycle",
                   "disp_used", "dispatch_c", "ready", "t",
                   "best_cycle", "issue_c", "a", "b", "c", "addr",
                   "drain", "n_fwd", "complete", "retire_req",
                   "com_cycle", "com_used", "retire_c", "last_retire",
                   "cur_line", "free_alu"},
        "substores": {"free_alu", "regready", "store_buffer"},
        "calls": {"l1i_access", "len", "rob_popleft", "lq_popleft",
                  "sq_popleft", "min", "sb_get", "access_data",
                  "rob_append", "lq_append", "sq_append"},
        "dotted_calls": {"free_alu.index"},
        "attrs": set(),
        "attr_stores": set(),
        "attrs_any": {"mem_addr"},
    },
    "repro/wrongpath/streamblock.py": {
        "tables": ("STREAM_TEMPLATES",),
        "names": {"items", "i", "wp_ready", "regready", "mshrs",
                  "port_hot", "l1i_access", "access_data",
                  "l1d_contains", "fetch_cycle", "fetch_used",
                  "cur_line", "resolution", "executed", "wp_get",
                  "wa", "rec", "free_alu", "penalty", "fetch_c",
                  "ready", "t", "best_cycle", "issue_c", "a", "b",
                  "c", "addr", "complete", "ok", "earliest", "len",
                  "min"},
        "stores": {"wp_get", "wa", "rec", "penalty", "fetch_cycle",
                   "fetch_used", "fetch_c", "ready", "t",
                   "best_cycle", "issue_c", "a", "b", "c", "addr",
                   "complete", "ok", "earliest", "free_alu",
                   "executed"},
        "substores": {"wp_ready", "free_alu"},
        "calls": {"l1i_access", "wp_get", "min", "len",
                  "l1d_contains", "access_data"},
        "dotted_calls": {"mshrs.remove", "mshrs.append",
                         "free_alu.index"},
        "attrs": {"wp_ready.get"},
        "attr_stores": set(),
        "attrs_any": {"mem_addr"},
    },
}


def _block_profile(src):
    path = src.path.replace("\\", "/")
    for suffix, profile in BLOCK_PROFILES.items():
        if path.endswith(suffix):
            return profile
    return None


def _parse_fragment(rendered: str):
    """Parse one dummy-rendered template.

    Templates come in three shapes: plain statement runs (parse
    as-is), function heads ending in ``:`` (need a body), and
    fragments containing ``return`` (legal only inside a function).
    Returns the parsed tree or the SyntaxError message string.
    """
    try:
        return ast.parse(rendered)
    except SyntaxError:
        pass
    try:
        return ast.parse(rendered + "\n    pass")
    except SyntaxError:
        pass
    shell = "def run():\n" + "\n".join(
        "    " + line for line in rendered.split("\n"))
    try:
        return ast.parse(shell)
    except SyntaxError as exc:
        return exc.msg or "invalid syntax"


def _audit_block(rendered: str, profile: dict) -> list:
    """Whitelist problems with one dummy-rendered block template."""
    tree = _parse_fragment(rendered)
    if isinstance(tree, str):
        return [f"rendered template does not parse: {tree}"]
    problems = []
    # Attribute nodes accounted for by a dotted whitelist entry (a
    # sanctioned method call's func, or a sanctioned dotted read) are
    # skipped when visited on their own.
    accounted = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute):
            if dotted_name(node.func) in profile["dotted_calls"]:
                accounted.add(id(node.func))
        elif isinstance(node, ast.Attribute) and \
                isinstance(node.ctx, ast.Load):
            dotted = dotted_name(node)
            if dotted in profile["attrs"]:
                accounted.add(id(node))
                inner = node.value
                while isinstance(inner, ast.Attribute):
                    accounted.add(id(inner))
                    inner = inner.value
    for node in ast.walk(tree):
        if isinstance(node, _BLOCK_FORBIDDEN):
            problems.append(f"forbidden construct {type(node).__name__}")
        elif isinstance(node, ast.FunctionDef):
            if node.name != "run":
                problems.append(f"defines function `{node.name}` "
                                f"(only `run` is sanctioned)")
        elif isinstance(node, ast.Attribute):
            if id(node) in accounted:
                continue
            dotted = dotted_name(node)
            if isinstance(node.ctx, ast.Store):
                if dotted not in profile["attr_stores"]:
                    problems.append(f"attribute store outside the "
                                    f"record tails: `{dotted or node.attr}`")
            elif node.attr not in profile["attrs_any"]:
                problems.append(f"attribute access outside the declared "
                                f"namespace: `{dotted or node.attr}`")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if dotted_name(func) not in profile["dotted_calls"]:
                    problems.append(f"call outside the whitelist: "
                                    f"`{dotted_name(func) or '?'}()`")
            elif not (isinstance(func, ast.Name)
                      and func.id in profile["calls"]):
                problems.append(f"call outside the whitelist: "
                                f"`{dotted_name(func) or '?'}()`")
        elif isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Store):
                if node.id not in profile["stores"]:
                    problems.append(f"binds disallowed name `{node.id}`")
            elif node.id not in profile["names"]:
                problems.append(f"reads undeclared name `{node.id}`")
        elif isinstance(node, ast.Subscript) and \
                isinstance(node.ctx, ast.Store):
            if not (isinstance(node.value, ast.Name)
                    and node.value.id in profile["substores"]):
                problems.append("subscript store outside the declared "
                                "mutable arguments")
    return problems


def _block_tables(src, profile):
    """Yield (name, lineno, templates | None) for each profiled table.

    ``templates`` is a list of (label, template source); None means the
    table is missing or not a statically visible string literal.
    """
    assigns = {}
    for node in src.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            assigns[node.targets[0].id] = node
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name) and \
                node.value is not None:
            assigns[node.target.id] = node
    for name in profile["tables"]:
        node = assigns.get(name)
        if node is None:
            yield name, 1, None
            continue
        value = node.value
        if isinstance(value, ast.Constant) and \
                isinstance(value.value, str):
            yield name, node.lineno, [(name, value.value)]
        elif isinstance(value, ast.Dict):
            templates, ok = [], True
            for key, val in zip(value.keys, value.values):
                label = key.value if isinstance(key, ast.Constant) \
                    else "?"
                if isinstance(val, ast.Constant) and \
                        isinstance(val.value, str):
                    templates.append((f"{name}[{label!r}]", val.value))
                else:
                    ok = False
            yield name, node.lineno, templates if ok else None
        else:
            yield name, node.lineno, None


def _template_assigns(func: ast.FunctionDef) -> dict:
    """UPPERCASE string constants that look like handler templates."""
    templates = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str) and \
                "def run(" in node.value.value:
            templates[node.targets[0].id] = node.value.value
    return templates


def _wrapper_map(func: ast.FunctionDef, templates: dict) -> dict:
    """``alu``-style wrappers: name -> (template, keyword, line span).

    Detects ``def w(op, X): gen(op, TEMPLATE, kw=X)``.  The span lets
    the substitution scan skip the forwarding ``gen`` call inside the
    wrapper body (it is audited through the wrapper's call sites).
    """
    wrappers = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.FunctionDef) or \
                len(node.args.args) != 2:
            continue
        second = node.args.args[1].arg
        for call in ast.walk(node):
            if isinstance(call, ast.Call) and \
                    isinstance(call.func, ast.Name) and \
                    call.func.id == "gen" and len(call.args) >= 2 and \
                    isinstance(call.args[1], ast.Name) and \
                    call.args[1].id in templates:
                for kw in call.keywords:
                    if isinstance(kw.value, ast.Name) and \
                            kw.value.id == second and kw.arg:
                        wrappers[node.name] = (
                            call.args[1].id, kw.arg,
                            (node.lineno,
                             getattr(node, "end_lineno", node.lineno)))
    return wrappers


def _substitutions(func: ast.FunctionDef, templates: dict,
                   wrappers: dict):
    """Yield (call node, template source, {kw: const}, resolvable)."""
    wrapper_spans = [span for _, _, span in wrappers.values()]
    for node in ast.walk(func):
        if not isinstance(node, ast.Call) or \
                not isinstance(node.func, ast.Name):
            continue
        name = node.func.id
        if name == "gen" and len(node.args) >= 2:
            if any(lo <= node.lineno <= hi for lo, hi in wrapper_spans):
                continue  # the forwarding call inside a wrapper body
            tmpl = node.args[1]
            if isinstance(tmpl, ast.Name) and tmpl.id in templates:
                subst, ok = {}, True
                for kw in node.keywords:
                    if kw.arg and isinstance(kw.value, ast.Constant) \
                            and isinstance(kw.value.value, str):
                        subst[kw.arg] = kw.value.value
                    elif kw.arg:
                        ok = False
                yield node, templates[tmpl.id], subst, ok
        elif name in wrappers:
            tmpl_name, kw_name, _ = wrappers[name]
            if len(node.args) >= 2 and \
                    isinstance(node.args[1], ast.Constant) and \
                    isinstance(node.args[1].value, str):
                yield (node, templates[tmpl_name],
                       {kw_name: node.args[1].value}, True)
            else:
                yield node, templates[tmpl_name], {}, False


@register
class ExecHandlerRule:
    id = "SC003"
    title = ("exec-handler safety: generated handler and block "
             "templates pass an AST whitelist; no exec/eval outside "
             "the sanctioned sites")
    severity = "error"

    def check(self, src, project):
        if not in_scope(src, self.id):
            return

        profile = _block_profile(src)

        builders = [node for node in ast.walk(src.tree)
                    if isinstance(node, ast.FunctionDef)
                    and node.name == "_build_handlers"]
        sanctioned_spans = [(b.lineno,
                             getattr(b, "end_lineno", b.lineno))
                            for b in builders]
        if src.path.replace("\\", "/").endswith(
                "repro/functional/superblock.py"):
            # The second sanctioned exec site: the block compiler the
            # three superhandler modules funnel their rendered source
            # through (audited via BLOCK_PROFILES below).
            sanctioned_spans += [
                (node.lineno, getattr(node, "end_lineno", node.lineno))
                for node in ast.walk(src.tree)
                if isinstance(node, ast.FunctionDef)
                and node.name == "_compile_block"]

        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in ("exec", "eval"):
                if not any(lo <= node.lineno <= hi
                           for lo, hi in sanctioned_spans):
                    yield src.finding(
                        "SC003", node,
                        f"`{node.func.id}()` outside the sanctioned "
                        f"sites (_build_handlers / superblock's "
                        f"_compile_block); dynamic code needs an "
                        f"audit story (see SC003 in DESIGN.md §8)")

        if profile is not None:
            for name, lineno, templates in _block_tables(src, profile):
                if templates is None:
                    yield src.finding(
                        "SC003", lineno,
                        f"block template table `{name}` is missing or "
                        f"not a static string table; the rendered "
                        f"code cannot be audited")
                    continue
                for label, template in templates:
                    try:
                        rendered = template.format_map(_DUMMY)
                    except (KeyError, IndexError, ValueError):
                        yield src.finding(
                            "SC003", lineno,
                            f"template {label} has a placeholder the "
                            f"audit cannot dummy-render")
                        continue
                    for problem in _audit_block(rendered, profile):
                        yield src.finding(
                            "SC003", lineno,
                            f"block template {label} violates the "
                            f"whitelist: {problem}")

        for builder in builders:
            templates = _template_assigns(builder)
            wrappers = _wrapper_map(builder, templates)
            if not templates:
                yield src.finding(
                    "SC003", builder,
                    "_build_handlers has an exec site but no "
                    "statically visible templates; simcheck cannot "
                    "audit the generated code")
                continue
            for call, template, subst, ok in _substitutions(
                    builder, templates, wrappers):
                if not ok and not subst:
                    yield src.finding(
                        "SC003", call,
                        "handler substitution is not a string "
                        "constant; the generated code cannot be "
                        "audited statically")
                    continue
                try:
                    rendered = template.format(**subst)
                except (KeyError, IndexError):
                    yield src.finding(
                        "SC003", call,
                        f"template placeholder mismatch for "
                        f"substitution {sorted(subst)}")
                    continue
                for problem in _audit_generated(rendered):
                    yield src.finding(
                        "SC003", call,
                        f"generated handler violates the whitelist: "
                        f"{problem}")
