"""SC003 — exec-handler safety for the generated instruction handlers.

``repro.functional.emulator._build_handlers`` is the one sanctioned
``exec`` site in the tree: it renders ALU/branch handler source from
string templates (``{expr}``/``{test}`` substitution) so executing an
instruction costs a single flat call.  That speed trick is only safe
while the generated code stays trivially auditable, so this rule:

* statically re-renders every template × substitution pair it can
  resolve (direct ``gen(op, TEMPLATE, kw=const)`` calls and one level of
  ``def alu(op, expr): gen(op, ALU, expr=expr)``-style wrappers) and
  checks the resulting AST against a whitelist — no imports, no global
  or nonlocal writes, no attribute access outside the declared ``emu``/
  ``ins`` namespace, no calls except the arithmetic helpers;
* flags any ``exec``/``eval`` call *outside* a ``_build_handlers``
  function anywhere in ``src/repro/`` — new exec sites need their own
  audit story before they can exist;
* flags substitutions it cannot resolve to a constant (an unverifiable
  template is treated as a violation, not a pass).
"""

from __future__ import annotations

import ast

from simcheck.rules import in_scope, register
from simcheck.rules._util import dotted_name

#: Functions generated handlers may call.
ALLOWED_CALLS = {"_s32", "_div", "_rem", "int", "abs", "min", "max"}

#: Attribute namespace the handlers may touch (load or store).
ALLOWED_ATTRS = {
    "emu": {"x", "f", "_taken", "_mem_addr"},
    "ins": {"rs1", "rs2", "rd", "imm", "pc", "target"},
}

#: Globals the rendered code may read (module ns handed to exec + locals
#: the templates themselves bind).
ALLOWED_NAMES = {"MASK", "INT_MIN", "_s32", "_div", "_rem",
                 "INSTRUCTION_SIZE", "emu", "ins", "x", "f", "a", "b",
                 "i", "value", "run", "int", "abs", "min", "max",
                 "True", "False", "None"}

#: Names the rendered code may bind.
ALLOWED_STORES = {"run", "x", "f", "a", "b", "i", "value"}

_FORBIDDEN_NODES = (ast.Import, ast.ImportFrom, ast.Global,
                    ast.Nonlocal, ast.ClassDef, ast.Lambda, ast.Await,
                    ast.Yield, ast.YieldFrom, ast.Try, ast.With,
                    ast.Delete, ast.Starred)


def _audit_generated(source: str) -> list:
    """Whitelist problems with one rendered handler source."""
    problems = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [f"rendered handler does not parse: {exc.msg}"]
    for node in ast.walk(tree):
        if isinstance(node, _FORBIDDEN_NODES):
            problems.append(
                f"forbidden construct {type(node).__name__}")
        elif isinstance(node, ast.Attribute):
            base = node.value
            if not (isinstance(base, ast.Name)
                    and base.id in ALLOWED_ATTRS
                    and node.attr in ALLOWED_ATTRS[base.id]):
                problems.append(
                    f"attribute access outside the declared namespace: "
                    f"`{dotted_name(node) or node.attr}`")
        elif isinstance(node, ast.Call):
            func = node.func
            if not (isinstance(func, ast.Name)
                    and func.id in ALLOWED_CALLS):
                problems.append(
                    f"call outside the whitelist: "
                    f"`{dotted_name(func) or '?'}()`")
        elif isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Store):
                if node.id not in ALLOWED_STORES:
                    problems.append(f"binds disallowed name "
                                    f"`{node.id}`")
            elif node.id not in ALLOWED_NAMES:
                problems.append(f"reads undeclared name `{node.id}`")
        elif isinstance(node, ast.Subscript) and \
                isinstance(node.ctx, ast.Store):
            if not (isinstance(node.value, ast.Name)
                    and node.value.id in ALLOWED_STORES):
                problems.append("subscript store outside x/f register "
                                "files")
    return problems


def _template_assigns(func: ast.FunctionDef) -> dict:
    """UPPERCASE string constants that look like handler templates."""
    templates = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str) and \
                "def run(" in node.value.value:
            templates[node.targets[0].id] = node.value.value
    return templates


def _wrapper_map(func: ast.FunctionDef, templates: dict) -> dict:
    """``alu``-style wrappers: name -> (template, keyword, line span).

    Detects ``def w(op, X): gen(op, TEMPLATE, kw=X)``.  The span lets
    the substitution scan skip the forwarding ``gen`` call inside the
    wrapper body (it is audited through the wrapper's call sites).
    """
    wrappers = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.FunctionDef) or \
                len(node.args.args) != 2:
            continue
        second = node.args.args[1].arg
        for call in ast.walk(node):
            if isinstance(call, ast.Call) and \
                    isinstance(call.func, ast.Name) and \
                    call.func.id == "gen" and len(call.args) >= 2 and \
                    isinstance(call.args[1], ast.Name) and \
                    call.args[1].id in templates:
                for kw in call.keywords:
                    if isinstance(kw.value, ast.Name) and \
                            kw.value.id == second and kw.arg:
                        wrappers[node.name] = (
                            call.args[1].id, kw.arg,
                            (node.lineno,
                             getattr(node, "end_lineno", node.lineno)))
    return wrappers


def _substitutions(func: ast.FunctionDef, templates: dict,
                   wrappers: dict):
    """Yield (call node, template source, {kw: const}, resolvable)."""
    wrapper_spans = [span for _, _, span in wrappers.values()]
    for node in ast.walk(func):
        if not isinstance(node, ast.Call) or \
                not isinstance(node.func, ast.Name):
            continue
        name = node.func.id
        if name == "gen" and len(node.args) >= 2:
            if any(lo <= node.lineno <= hi for lo, hi in wrapper_spans):
                continue  # the forwarding call inside a wrapper body
            tmpl = node.args[1]
            if isinstance(tmpl, ast.Name) and tmpl.id in templates:
                subst, ok = {}, True
                for kw in node.keywords:
                    if kw.arg and isinstance(kw.value, ast.Constant) \
                            and isinstance(kw.value.value, str):
                        subst[kw.arg] = kw.value.value
                    elif kw.arg:
                        ok = False
                yield node, templates[tmpl.id], subst, ok
        elif name in wrappers:
            tmpl_name, kw_name, _ = wrappers[name]
            if len(node.args) >= 2 and \
                    isinstance(node.args[1], ast.Constant) and \
                    isinstance(node.args[1].value, str):
                yield (node, templates[tmpl_name],
                       {kw_name: node.args[1].value}, True)
            else:
                yield node, templates[tmpl_name], {}, False


@register
class ExecHandlerRule:
    id = "SC003"
    title = ("exec-handler safety: generated handler templates pass an "
             "AST whitelist; no exec/eval outside _build_handlers")
    severity = "error"

    def check(self, src, project):
        if not in_scope(src, self.id):
            return

        builders = [node for node in ast.walk(src.tree)
                    if isinstance(node, ast.FunctionDef)
                    and node.name == "_build_handlers"]
        builder_spans = [(b.lineno,
                          getattr(b, "end_lineno", b.lineno))
                         for b in builders]

        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in ("exec", "eval"):
                if not any(lo <= node.lineno <= hi
                           for lo, hi in builder_spans):
                    yield src.finding(
                        "SC003", node,
                        f"`{node.func.id}()` outside the sanctioned "
                        f"_build_handlers site; dynamic code needs an "
                        f"audit story (see SC003 in DESIGN.md §8)")

        for builder in builders:
            templates = _template_assigns(builder)
            wrappers = _wrapper_map(builder, templates)
            if not templates:
                yield src.finding(
                    "SC003", builder,
                    "_build_handlers has an exec site but no "
                    "statically visible templates; simcheck cannot "
                    "audit the generated code")
                continue
            for call, template, subst, ok in _substitutions(
                    builder, templates, wrappers):
                if not ok and not subst:
                    yield src.finding(
                        "SC003", call,
                        "handler substitution is not a string "
                        "constant; the generated code cannot be "
                        "audited statically")
                    continue
                try:
                    rendered = template.format(**subst)
                except (KeyError, IndexError):
                    yield src.finding(
                        "SC003", call,
                        f"template placeholder mismatch for "
                        f"substitution {sorted(subst)}")
                    continue
                for problem in _audit_generated(rendered):
                    yield src.finding(
                        "SC003", call,
                        f"generated handler violates the whitelist: "
                        f"{problem}")
