"""Shared AST helpers for the simcheck rules."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def scoped_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope's nodes WITHOUT descending into nested function /
    lambda scopes (their loops and locals belong to them)."""
    todo = list(ast.iter_child_nodes(scope))
    while todo:
        node = todo.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            todo.extend(ast.iter_child_nodes(node))


def walk_functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    """Every (async) function definition in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def self_attr_loads(func: ast.FunctionDef,
                    self_name: str = "self") -> Set[str]:
    """Names of ``self.<attr>`` loads anywhere in the function."""
    loads: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == self_name and \
                isinstance(node.ctx, ast.Load):
            loads.add(node.attr)
    return loads


def self_attr_stores(func: ast.FunctionDef,
                     self_name: str = "self") -> Dict[str, int]:
    """``self.<attr> = ...`` stores -> first line number."""
    stores: Dict[str, int] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == self_name and \
                isinstance(node.ctx, ast.Store):
            stores.setdefault(node.attr, node.lineno)
    return stores


def self_method_calls(func: ast.FunctionDef,
                      self_name: str = "self") -> Set[str]:
    """Names of ``self.<method>(...)`` calls in the function."""
    calls: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id == self_name:
            calls.add(node.func.attr)
    return calls


def class_methods(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """Directly defined methods by name (no inheritance)."""
    return {stmt.name: stmt for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}


def dataclass_fields(node: ast.ClassDef) -> List[Tuple[str, int]]:
    """Annotated field names of a dataclass body as (name, line)."""
    fields: List[Tuple[str, int]] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            anno = stmt.annotation
            anno_name = dotted_name(anno) or ""
            if isinstance(anno, ast.Subscript):
                anno_name = dotted_name(anno.value) or ""
            if anno_name.split(".")[-1] == "ClassVar":
                continue
            fields.append((stmt.target.id, stmt.lineno))
    return fields


def is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target) or ""
        if name.split(".")[-1] == "dataclass":
            return True
    return False


def const_str_elts(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """String elements of a literal set/tuple/list or
    ``set``/``frozenset``/``tuple`` call over one; None if not literal."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset", "tuple") \
            and len(node.args) == 1 and not node.keywords:
        node = node.args[0]
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        values = []
        for elt in node.elts:
            if not (isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)):
                return None
            values.append(elt.value)
        return tuple(values)
    return None


def loops_in(func: ast.FunctionDef) -> List[ast.AST]:
    """Every for/while loop in the function (nested ones included)."""
    return [node for node in ast.walk(func)
            if isinstance(node, (ast.For, ast.While, ast.AsyncFor))]


def nodes_under(roots: Sequence[ast.AST]) -> Iterator[ast.AST]:
    """Walk the bodies of loop nodes (the loops' own iter/test included)."""
    for root in roots:
        yield from ast.walk(root)


def enclosing_raise_spans(func: ast.FunctionDef) -> List[Tuple[int, int]]:
    """(first, last) line spans of every ``raise`` statement subtree."""
    spans = []
    for node in ast.walk(func):
        if isinstance(node, ast.Raise):
            end = getattr(node, "end_lineno", node.lineno)
            spans.append((node.lineno, end))
    return spans


def in_spans(lineno: int, spans: Sequence[Tuple[int, int]]) -> bool:
    return any(lo <= lineno <= hi for lo, hi in spans)
