"""SC004 — cache-key completeness for content-addressed job specs.

The experiment engine's correctness rests on :meth:`SimJob.spec` naming
*everything* that determines a simulation's outcome: a field that exists
on the dataclass but silently misses the SHA-256 key makes two different
jobs share a cache entry — the cache then serves wrong results with no
error anywhere.  ``trace_dir`` set the precedent for the one legitimate
exception (side-effect-only fields that must NOT key the cache).

The rule applies to every dataclass that defines a ``spec`` method (the
hash basis) and requires the partition to be *declared*:

* module- or class-level ``KEYED_FIELDS`` and ``KEY_EXCLUDED_FIELDS``
  literal sets must exist,
* keyed ∪ excluded == the dataclass's fields, keyed ∩ excluded == ∅,
* every keyed field must be read somewhere in ``spec``'s transitive
  self-method closure (``spec`` -> ``self.config()`` -> overrides …),
* no excluded field may be reachable from ``spec`` — an excluded field
  feeding the hash is as wrong as a keyed field missing it.

``src/repro/engine/job.py`` mirrors the same partition at import time
(`_assert_key_partition`), so the invariant holds for dynamically added
fields too; this rule makes it a lint-time failure with a file:line.
"""

from __future__ import annotations

import ast

from simcheck.rules import in_scope, register
from simcheck.rules._util import (class_methods, const_str_elts,
                                  dataclass_fields, is_dataclass,
                                  self_attr_loads, self_method_calls)

KEYED_NAME = "KEYED_FIELDS"
EXCLUDED_NAME = "KEY_EXCLUDED_FIELDS"


def _declared_sets(tree: ast.AST, cls: ast.ClassDef):
    """(keyed, excluded, line) from module- or class-level literals."""
    found = {}
    scopes = list(tree.body) + list(cls.body)
    for stmt in scopes:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name) and \
                stmt.targets[0].id in (KEYED_NAME, EXCLUDED_NAME):
            elts = const_str_elts(stmt.value)
            if elts is not None:
                found[stmt.targets[0].id] = (frozenset(elts),
                                             stmt.lineno)
    return found


def _spec_closure(cls: ast.ClassDef):
    """Self attributes reachable from ``spec`` through self-method calls."""
    methods = class_methods(cls)
    reached_attrs = set()
    visited = set()
    frontier = ["spec"]
    while frontier:
        name = frontier.pop()
        if name in visited or name not in methods:
            continue
        visited.add(name)
        func = methods[name]
        reached_attrs |= self_attr_loads(func)
        frontier.extend(self_method_calls(func))
    return reached_attrs


@register
class CacheKeyRule:
    id = "SC004"
    title = ("cache-key completeness: every job-spec dataclass field is "
             "keyed or explicitly excluded, and spec() reaches exactly "
             "the keyed ones")
    severity = "error"

    def check(self, src, project):
        if not in_scope(src, self.id):
            return
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef) and is_dataclass(node) \
                    and "spec" in class_methods(node):
                yield from self._check_class(src, node)

    def _check_class(self, src, cls):
        fields = dict(dataclass_fields(cls))
        declared = _declared_sets(src.tree, cls)
        missing_decls = [n for n in (KEYED_NAME, EXCLUDED_NAME)
                         if n not in declared]
        if missing_decls:
            yield src.finding(
                "SC004", cls,
                f"dataclass `{cls.name}` has a spec() hash basis but "
                f"does not declare {' / '.join(missing_decls)} as a "
                f"literal set; the key partition must be explicit")
            return
        keyed, keyed_line = declared[KEYED_NAME]
        excluded, excl_line = declared[EXCLUDED_NAME]

        overlap = keyed & excluded
        if overlap:
            yield src.finding(
                "SC004", keyed_line,
                f"`{cls.name}`: field(s) {sorted(overlap)} appear in "
                f"both {KEYED_NAME} and {EXCLUDED_NAME}")

        field_names = set(fields)
        for name in sorted(field_names - (keyed | excluded)):
            yield src.finding(
                "SC004", fields[name],
                f"`{cls.name}.{name}` is neither keyed nor excluded: "
                f"a field missing the SHA-256 key makes distinct jobs "
                f"share a cache entry (add it to {KEYED_NAME}, or to "
                f"{EXCLUDED_NAME} with a comment saying why it cannot "
                f"affect results)")
        for name in sorted((keyed | excluded) - field_names):
            where = keyed_line if name in keyed else excl_line
            yield src.finding(
                "SC004", where,
                f"`{cls.name}`: declared field `{name}` does not exist "
                f"on the dataclass (stale partition declaration)")

        reached = _spec_closure(cls)
        for name in sorted((keyed & field_names) - reached):
            yield src.finding(
                "SC004", fields[name],
                f"`{cls.name}.{name}` is declared keyed but spec() "
                f"never reads it (directly or via self-method calls); "
                f"the hash silently ignores it")
        for name in sorted(excluded & reached & field_names):
            yield src.finding(
                "SC004", fields[name],
                f"`{cls.name}.{name}` is declared key-excluded but is "
                f"reachable from spec(); excluded fields must not feed "
                f"the hash")
