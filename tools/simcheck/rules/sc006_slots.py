"""SC006 — ``__slots__`` coverage for per-instruction classes.

Classes instantiated once per simulated instruction (``DynInstr``,
``WrongPathRecord``, per-mispredict ``WrongPathWindow``) are the
allocation floor of the whole simulator: a ``__dict__`` on any of them
costs memory and attribute-lookup time multiplied by hundreds of
millions of instances, and an attribute that escapes ``__slots__``
resurrects the dict silently.  Mark such classes with
``# simcheck: per-instruction`` above the ``class`` line; the rule then
checks, project-wide:

* the class defines a literal ``__slots__``;
* every ``self.<attr> = ...`` in the class body is listed in it (with
  an unslotted base class this would otherwise silently allocate a
  dict rather than raise);
* the class has no unslotted base that defeats the layout;
* every ``Cls.__new__(Cls)``-style construction site — including
  through locals like ``new_di = DynInstr.__new__`` — stores **exactly**
  the slot set before the object escapes: a missed slot is a deferred
  ``AttributeError`` on whatever path reads it first (the batch
  pipeline builds ``DynInstr`` this way; see
  ``FunctionalFrontend.produce_batch``).
"""

from __future__ import annotations

import ast

from simcheck.rules import in_scope, register
from simcheck.rules._util import walk_functions

_SLOTTED_BUILTIN_BASES = {"object", "Exception", "tuple", "int", "str"}


def _new_aliases(func: ast.FunctionDef, class_names):
    """Locals bound to a class's ``__new__`` (``new_di = DynInstr.__new__``)."""
    new_alias = {}   # local name -> class name
    for node in ast.walk(func):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            continue
        target, value = node.targets[0].id, node.value
        if isinstance(value, ast.Attribute) and \
                value.attr == "__new__" and \
                isinstance(value.value, ast.Name) and \
                value.value.id in class_names:
            new_alias[target] = value.value.id
    return new_alias


def _construction_sites(func: ast.FunctionDef, class_names):
    """(assigned local, class name, call node) for ``__new__`` builds."""
    new_alias = _new_aliases(func, class_names)
    for node in ast.walk(func):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            continue
        call = node.value
        target = node.targets[0].id
        # di = DynInstr.__new__(DynInstr)  /  di = new_di(di_cls)
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr == "__new__" and \
                isinstance(call.func.value, ast.Name) and \
                call.func.value.id in class_names:
            yield target, call.func.value.id, call
        elif isinstance(call.func, ast.Name) and \
                call.func.id in new_alias:
            yield target, new_alias[call.func.id], call


@register
class SlotsRule:
    id = "SC006"
    title = ("__slots__ coverage: per-instruction classes are slotted "
             "and __new__-construction sites populate every slot")
    severity = "error"

    def check(self, src, project):
        if not in_scope(src, self.id, repro_only=False):
            return
        # -- definition-side checks (classes marked in this file)
        for name, (owner, cls, slots) in project.per_instruction.items():
            if owner is not src:
                continue
            if slots is None:
                yield src.finding(
                    "SC006", cls,
                    f"per-instruction class `{name}` has no __slots__; "
                    f"every instance carries a __dict__ on the hottest "
                    f"allocation path")
                continue
            for base in cls.bases:
                base_name = getattr(base, "id", None)
                if base_name and \
                        base_name not in _SLOTTED_BUILTIN_BASES and \
                        base_name not in project.per_instruction:
                    yield src.finding(
                        "SC006", base,
                        f"per-instruction class `{name}` inherits from "
                        f"`{base_name}`, which simcheck cannot verify "
                        f"as slotted; an unslotted base defeats "
                        f"__slots__")
            slot_set = set(slots)
            for method in cls.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                for node in ast.walk(method):
                    if isinstance(node, ast.Attribute) and \
                            isinstance(node.ctx, ast.Store) and \
                            isinstance(node.value, ast.Name) and \
                            node.value.id == "self" and \
                            node.attr not in slot_set:
                        yield src.finding(
                            "SC006", node,
                            f"`{name}.{method.name}` assigns "
                            f"`self.{node.attr}`, which is not in "
                            f"__slots__")

        # -- construction-side checks (any file, via the project index)
        class_names = {n for n, (_, _, slots)
                       in project.per_instruction.items()
                       if slots is not None}
        if not class_names:
            return
        for func in walk_functions(src.tree):
            for local, cls_name, call in _construction_sites(
                    func, class_names):
                slots = set(project.per_instruction[cls_name][2])
                stored = set()
                for node in ast.walk(func):
                    if isinstance(node, ast.Attribute) and \
                            isinstance(node.ctx, ast.Store) and \
                            isinstance(node.value, ast.Name) and \
                            node.value.id == local:
                        stored.add(node.attr)
                for missing in sorted(slots - stored):
                    yield src.finding(
                        "SC006", call,
                        f"`{func.name}` builds `{cls_name}` via "
                        f"__new__ but never stores slot `{missing}`; "
                        f"reading it later raises AttributeError")
                for extra in sorted(stored - slots):
                    yield src.finding(
                        "SC006", call,
                        f"`{func.name}` stores `{local}.{extra}` on a "
                        f"__new__-built `{cls_name}`, which has no "
                        f"such slot")
