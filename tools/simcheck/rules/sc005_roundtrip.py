"""SC005 — round-trip completeness for serializable classes.

Any class shipping through the result store / process pool as plain data
(``to_dict``/``from_dict``, or the stats bags' ``counters``/
``from_counters``) must cover *all* of its state: a field added to the
class but forgotten in the serializer deserializes as stale or missing
data — precisely the silent-corruption mode the engine cache cannot
detect (the blob still parses, the schema still matches).

For each such class the rule derives its field set from, in order:
dataclass annotations, ``__slots__``, else the ``self.<x> = ...``
assignments in ``__init__``.  The serializer covers a field when it
loads ``self.<field>`` (or iterates ``__slots__`` generically, or calls
``dataclasses.asdict``); the deserializer when it stores it on the
instance (or builds via ``cls(...)`` / a generic ``__slots__`` +
``setattr`` loop).  Deliberately non-round-tripped fields (live object
handles like ``SimulationResult.bpu``) must be named in a class-level
``ROUNDTRIP_EXCLUDE`` tuple — visible, greppable, and testable, unlike
a silent omission.
"""

from __future__ import annotations

import ast

from simcheck.rules import in_scope, register
from simcheck.rules._util import (class_methods, const_str_elts,
                                  dataclass_fields, dotted_name,
                                  is_dataclass, self_attr_loads,
                                  self_attr_stores)

#: (serializer, deserializer) method-name pairs that form a round trip.
PAIRS = (("to_dict", "from_dict"), ("counters", "from_counters"))


def _class_fields(cls: ast.ClassDef):
    """(field -> line) from dataclass annos, __slots__, or __init__."""
    if is_dataclass(cls):
        return dict(dataclass_fields(cls))
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign) and \
                isinstance(stmt.targets[0], ast.Name) and \
                stmt.targets[0].id == "__slots__":
            elts = const_str_elts(stmt.value)
            if elts:
                return {name: stmt.lineno for name in elts}
    init = class_methods(cls).get("__init__")
    if init is None:
        return {}
    return dict(self_attr_stores(init))


def _excludes(cls: ast.ClassDef):
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign) and \
                isinstance(stmt.targets[0], ast.Name) and \
                stmt.targets[0].id == "ROUNDTRIP_EXCLUDE":
            return set(const_str_elts(stmt.value) or ())
    return set()


def _generic_coverage(func: ast.FunctionDef) -> bool:
    """Does the method iterate ``__slots__``/``asdict`` (covers all)?"""
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and \
                node.attr == "__slots__":
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func) or ""
            if name.split(".")[-1] == "asdict":
                return True
    return False


def _constructor_coverage(func: ast.FunctionDef) -> bool:
    """``cls(...)`` / ``cls(**data)`` construction covers every field
    (the real ``__init__`` signature enforces completeness)."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id == "cls" and \
                (node.args or node.keywords):
            return True
    return False


def _deserializer_stores(func: ast.FunctionDef):
    """Attributes stored on any local (``obj.field = ...``)."""
    stores = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and \
                isinstance(node.ctx, ast.Store) and \
                isinstance(node.value, ast.Name):
            stores.add(node.attr)
    return stores


@register
class RoundTripRule:
    id = "SC005"
    title = ("round-trip completeness: to_dict/from_dict (and "
             "counters/from_counters) cover every field or name it in "
             "ROUNDTRIP_EXCLUDE")
    severity = "error"

    def check(self, src, project):
        if not in_scope(src, self.id):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = class_methods(node)
            for ser_name, deser_name in PAIRS:
                if ser_name in methods and deser_name in methods:
                    yield from self._check_pair(
                        src, node, methods[ser_name],
                        methods[deser_name])

    def _check_pair(self, src, cls, ser, deser):
        fields = _class_fields(cls)
        if not fields:
            return
        excludes = _excludes(cls)

        for name in sorted(excludes - set(fields)):
            yield src.finding(
                "SC005", cls,
                f"`{cls.name}.ROUNDTRIP_EXCLUDE` names `{name}`, which "
                f"is not a field of the class (stale exclusion)")

        if not _generic_coverage(ser):
            covered = self_attr_loads(ser)
            for name in sorted(set(fields) - covered - excludes):
                yield src.finding(
                    "SC005", fields[name],
                    f"`{cls.name}.{name}` is not serialized by "
                    f"{ser.name}(): the field silently vanishes on "
                    f"round-trip (read it in {ser.name}, or add it to "
                    f"ROUNDTRIP_EXCLUDE with a comment saying why)")

        if not (_generic_coverage(deser)
                or _constructor_coverage(deser)):
            stored = _deserializer_stores(deser)
            for name in sorted(set(fields) - stored - excludes):
                yield src.finding(
                    "SC005", fields[name],
                    f"`{cls.name}.{name}` is never restored by "
                    f"{deser.name}(): deserialized instances miss the "
                    f"attribute entirely")
