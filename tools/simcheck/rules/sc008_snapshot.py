"""SC008 — snapshot completeness: ``state_dict`` must cover every
mutable field, and ``SimSnapshot.capture`` every Simulator component.

Checkpointed sampling (DESIGN.md §11) restores a simulator from a
``SimSnapshot`` and asserts digest parity with an uninterrupted run; a
field that ``state_dict`` forgets — or a whole component ``capture``
never touches — silently breaks that parity on exactly the inputs where
the field's reset value differs from its live value.  Two arms:

* **Field coverage** (per class): a class providing both ``state_dict``
  and ``load_state``/``load_state_dict`` must *reference* every
  ``__init__``-assigned mutable field (list/dict/set/comprehension/
  container-constructor initializers) in both methods, or name it in a
  class-level ``SNAPSHOT_EXCLUDE`` tuple.  Immutable initializers
  (ints, strings, parameters) are out of scope — rebinding them is the
  constructor's job.  Serializers that walk ``self.__slots__`` /
  ``self.__dict__`` / ``vars(self)`` generically cover everything.
* **Component coverage** (whole program): the class pairing
  ``capture``/``restore`` must mention every component the ``Simulator``
  declares as ``self.<name>: Optional[...]`` in its ``__init__``, or
  list it in its own ``SNAPSHOT_EXCLUDE`` (the committed exclude names
  ``core`` — timing state is rebuilt, not captured, per DESIGN.md §11).

Stale ``SNAPSHOT_EXCLUDE`` entries (naming no known field or component)
are themselves findings, so the exclude list cannot rot into a blanket
waiver.
"""

from __future__ import annotations

import ast
from typing import Set

from simcheck.rules import in_scope, register
from simcheck.rules._util import class_methods, const_str_elts, \
    dotted_name, self_attr_loads, self_attr_stores

#: Constructor calls whose result is mutable state worth snapshotting.
_MUTABLE_CTORS = {"list", "dict", "set", "bytearray", "deque",
                  "defaultdict", "OrderedDict", "Counter", "array"}

_LOADER_NAMES = ("load_state", "load_state_dict")


def _is_mutable_init(value: ast.AST) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = (dotted_name(value.func) or "").split(".")[-1]
        return name in _MUTABLE_CTORS
    if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Mult):
        return isinstance(value.left, ast.List) or \
            isinstance(value.right, ast.List)
    return False


def _snapshot_exclude(node: ast.ClassDef):
    """(names, line) of a literal class-level SNAPSHOT_EXCLUDE, or None."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "SNAPSHOT_EXCLUDE":
                    return const_str_elts(stmt.value) or (), stmt.lineno
    return None


def _generic_serializer(func: ast.AST) -> bool:
    """Does the method cover fields generically (slots/vars/asdict)?"""
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and \
                node.attr in ("__slots__", "__dict__"):
            return True
        if isinstance(node, ast.Call):
            name = (dotted_name(node.func) or "").split(".")[-1]
            if name in ("vars", "asdict"):
                return True
    return False


def _referenced_names(func: ast.AST) -> Set[str]:
    """Every identifier a method could cover a component through:
    parameters, names, attributes, and string literals (dict keys)."""
    names: Set[str] = set()
    args = func.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs):
        names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and \
                isinstance(node.value, str):
            names.add(node.value)
    return names


def _optional_components(init: ast.AST) -> dict:
    """``self.<name>: Optional[...]`` declarations -> line number."""
    out = {}
    for node in ast.walk(init):
        if not isinstance(node, ast.AnnAssign):
            continue
        target = node.target
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            continue
        anno = node.annotation
        if isinstance(anno, ast.Subscript) and \
                (dotted_name(anno.value) or "").split(".")[-1] == \
                "Optional":
            out.setdefault(target.attr, node.lineno)
    return out


@register
class SnapshotCompletenessRule:
    id = "SC008"
    title = ("snapshot completeness: state_dict/load_state cover every "
             "mutable field; capture covers every Simulator component")
    severity = "error"

    def check(self, src, project):
        if not in_scope(src, self.id):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = class_methods(node)
            serializer = methods.get("state_dict")
            loader = next((methods[n] for n in _LOADER_NAMES
                           if n in methods), None)
            if serializer is not None and loader is not None:
                yield from self._check_fields(src, node, serializer,
                                              loader, project)
            if "capture" in methods and "restore" in methods:
                yield from self._check_components(src, node,
                                                  methods["capture"],
                                                  project)

    # -- arm 1: per-class field coverage ----------------------------------------

    def _check_fields(self, src, node, serializer, loader, project):
        init = class_methods(node).get("__init__")
        if init is None:
            return
        exclude = _snapshot_exclude(node)
        excluded = set(exclude[0]) if exclude else set()
        all_fields = self_attr_stores(init)
        mutable = {name: line for name, line in all_fields.items()
                   if self._field_is_mutable(init, name)}

        ser_generic = _generic_serializer(serializer)
        load_generic = _generic_serializer(loader)
        ser_refs = self_attr_loads(serializer)
        load_refs = set(self_attr_stores(loader)) | \
            self_attr_loads(loader)

        for name in sorted(mutable):
            if name in excluded:
                continue
            missing = []
            if not ser_generic and name not in ser_refs:
                missing.append("state_dict")
            if not load_generic and name not in load_refs:
                missing.append(loader.name)
            if missing:
                yield src.finding(
                    "SC008", mutable[name],
                    f"`{node.name}.{name}` is mutable state but "
                    f"{' and '.join(missing)} never reference(s) it; "
                    f"serialize it or add it to SNAPSHOT_EXCLUDE with "
                    f"a reason")

        if exclude:
            valid = set(all_fields) | \
                self._component_names(node, project)
            for name in exclude[0]:
                if name not in valid:
                    yield src.finding(
                        "SC008", exclude[1],
                        f"`{node.name}.SNAPSHOT_EXCLUDE` names "
                        f"`{name}`, which is not a field of the class; "
                        f"remove the stale entry")

    def _field_is_mutable(self, init, name) -> bool:
        for node in ast.walk(init):
            target = value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self" and target.attr == name \
                    and value is not None and _is_mutable_init(value):
                return True
        return False

    # -- arm 2: whole-program component coverage --------------------------------

    def _component_names(self, node, project) -> Set[str]:
        """Simulator component names count as valid SNAPSHOT_EXCLUDE
        entries on the snapshot (capture/restore) class."""
        methods = class_methods(node)
        if "capture" not in methods or "restore" not in methods:
            return set()
        sim = project.graph.find_class("Simulator")
        if sim is None or "__init__" not in sim.methods:
            return set()
        return set(_optional_components(sim.methods["__init__"].node))

    def _check_components(self, src, node, capture, project):
        graph = project.graph
        sim = graph.find_class("Simulator")
        if sim is None or "__init__" not in sim.methods:
            return
        components = _optional_components(sim.methods["__init__"].node)
        if not components:
            return
        exclude = _snapshot_exclude(node)
        excluded = set(exclude[0]) if exclude else set()
        referenced = _referenced_names(capture)
        for name in sorted(components):
            if name in excluded or name in referenced:
                continue
            yield src.finding(
                "SC008", capture,
                f"`{node.name}.capture` never references Simulator "
                f"component `{name}` (declared at "
                f"{sim.src.display_path}:{components[name]}); capture "
                f"it or add it to SNAPSHOT_EXCLUDE with a reason")
