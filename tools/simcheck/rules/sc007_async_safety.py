"""SC007 — async-safety: no blocking work reachable from service
coroutines, and no synchronous lock held across an ``await``.

The service daemon (DESIGN.md §11) runs every client on one asyncio
event loop; a single blocking call anywhere under an ``async def`` —
``time.sleep``, a synchronous ``open``/``os.write``, ``subprocess``, an
un-awaited ``Future.result()`` — stalls *all* connections, and the bug
class is invisible to unit tests because a stalled loop still produces
correct answers, just late.  This rule walks the whole-program call
graph (:mod:`simcheck.graph` / :mod:`simcheck.effects`) so the blocking
call is found even when it hides two hops away in a shared helper:

* every ``async def`` in ``src/repro/service/`` is checked for *direct*
  blocking effects in its own body;
* every call it makes to a synchronous project function is checked for a
  blocking effect reachable through synchronous callees only — the
  finding lands at the call site and names the chain
  (``submit -> _journal -> RunJournal.record: os.write``);
* a non-async ``with`` on a ``threading`` lock whose body contains an
  ``await`` is flagged: the lock is held across a scheduling point, so
  every other task contending for it blocks the loop.

Sanctioned escapes need no annotation: ``asyncio.to_thread(fn, ...)``
and ``loop.run_in_executor(None, fn, ...)`` pass ``fn`` as a *value*,
not a call, so no call-graph edge exists and nothing is flagged —
which is exactly the repo's policy for doing blocking work from a
coroutine.  Anything else takes ``# simcheck: allow=SC007 <why>``.
"""

from __future__ import annotations

import ast

from simcheck.effects import Effect
from simcheck.rules import in_scope, register


def _service_scope(src) -> bool:
    """Real files: only the service package runs on the event loop."""
    posix = src.display_path.replace("\\", "/")
    return "repro/service" in posix


def _is_lock_typed(expr: ast.AST, func, graph, env) -> bool:
    """Does this with-item expression denote a ``threading`` lock?"""
    if isinstance(expr, ast.Name):
        return env.get(expr.id) == "threading-lock"
    if isinstance(expr, ast.Attribute) and \
            isinstance(expr.value, ast.Name) and \
            expr.value.id in ("self", "cls") and func.cls is not None:
        return func.cls.attr_types.get(expr.attr) == "threading-lock"
    return False


@register
class AsyncSafetyRule:
    id = "SC007"
    title = ("async-safety: no blocking call transitively reachable "
             "from service coroutines; no sync lock held across await")
    severity = "error"

    def check(self, src, project):
        if not in_scope(src, self.id):
            return
        if not src.is_fixture and not _service_scope(src):
            return
        graph = project.graph
        effects = project.effects
        for func in graph.functions_in(src):
            if not func.is_async:
                continue
            yield from self._check_coroutine(src, func, graph, effects)

    def _check_coroutine(self, src, func, graph, effects):
        # Direct blocking effects in the coroutine's own body.
        for w in effects.direct.get(func.qname, ()):
            if w.effect == Effect.BLOCKING:
                yield src.finding(
                    "SC007", w.line,
                    f"coroutine `{func.name}` blocks the event loop: "
                    f"{w.detail}; run it via asyncio.to_thread / "
                    f"run_in_executor")

        # Blocking effects reached through synchronous callees.  Async
        # callees are skipped: they are their own SC007 subjects, and
        # awaiting them yields the loop at every hop.
        seen_lines = set()
        for call, callee in graph.calls_in(func):
            if callee.is_async or call.lineno in seen_lines:
                continue
            witness = effects.sync_blocking_witness(callee)
            if witness is None:
                continue
            seen_lines.add(call.lineno)
            yield src.finding(
                "SC007", call,
                f"coroutine `{func.name}` reaches blocking work "
                f"through `{callee.name}`: "
                f"{witness.via(func.qname).describe()}; move the "
                f"blocking hop onto an executor thread")

        # Synchronous lock held across an await.
        env = graph.local_types(func)
        for node in ast.walk(func.node):
            if not isinstance(node, ast.With):
                continue
            holds_lock = any(
                _is_lock_typed(item.context_expr, func, graph, env)
                for item in node.items)
            if not holds_lock:
                continue
            if any(isinstance(inner, ast.Await)
                   for stmt in node.body for inner in ast.walk(stmt)):
                yield src.finding(
                    "SC007", node,
                    f"coroutine `{func.name}` holds a threading lock "
                    f"across an await: the loop deadlocks if another "
                    f"task contends; use asyncio.Lock or release "
                    f"before awaiting")
