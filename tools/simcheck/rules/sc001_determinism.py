"""SC001 — determinism: no unseeded randomness, wall-clock values, object
identities, or unordered iteration in the simulator package.

The reproduction's headline claim is bit-identical results across the
four techniques (DESIGN.md §6, the determinism goldens).  Everything in
``src/repro/`` is therefore presumed to feed returned or serialized
data, and the rule is deliberately conservative:

* calls into the *global* :mod:`random` RNG (``random.random()``,
  ``from random import randint`` …) — seeded ``random.Random(seed)``
  instances are fine;
* the numpy global RNG (``np.random.random()`` …) — ``default_rng(seed)``
  and friends are fine;
* wall-clock reads (``time.time``, ``datetime.now`` …) — the monotonic
  measurement clocks (``perf_counter``/``monotonic``/``process_time``)
  are allowed because results quarantine them in ``wall_seconds``, which
  the determinism goldens exclude;
* ``id()`` and builtin ``hash()`` (PYTHONHASHSEED-dependent for str);
* iterating a ``set``/``frozenset`` (hash order varies across
  interpreters for str elements), including one-step inference through
  locals (``adj = [set(...)]; for v in adj[u]``);
* iterating directory listings (``os.listdir``/``os.walk``/``glob`` …)
  without ``sorted(...)`` — filesystem order is not deterministic.

Pytest files (``test_*.py``/``conftest.py``) are exempt: their results
are assertion-checked, not serialized.  Justified exceptions take an
inline ``# simcheck: allow=SC001 <why>``.
"""

from __future__ import annotations

import ast

from simcheck.rules import in_scope, register
from simcheck.rules._util import dotted_name, scoped_walk

#: Wall-clock / identity calls that must not feed simulator data.
BAD_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived UUID",
    "uuid.uuid4": "random UUID",
    "os.getpid": "process identity",
}

#: Names importable ``from <module> import <name>`` that are equally bad.
BAD_FROM_IMPORTS = {
    ("time", "time"): "wall-clock read",
    ("time", "time_ns"): "wall-clock read",
    ("os", "urandom"): "OS entropy",
    ("uuid", "uuid4"): "random UUID",
}

#: numpy.random attributes that are *not* the unseeded global RNG.
NUMPY_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64",
                   "Philox", "SFC64", "MT19937", "BitGenerator",
                   "RandomState"}

#: random-module attributes that are fine (seedable class constructors).
RANDOM_MODULE_OK = {"Random", "SystemRandom"}

#: Filesystem enumerations whose order is not deterministic.
FS_LISTING_CALLS = {"os.listdir", "os.scandir", "os.walk", "glob.glob",
                    "glob.iglob", "listdir", "scandir", "walk", "iglob"}

_SET_METHODS = {"intersection", "union", "difference",
                "symmetric_difference"}


def _is_set_expr(node: ast.AST, env: dict) -> bool:
    """Best-effort: does this expression evaluate to a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and \
                node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _SET_METHODS and \
                _is_set_expr(node.func.value, env):
            return True
    if isinstance(node, ast.BinOp) and \
            isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.BitXor,
                                 ast.Sub)):
        return _is_set_expr(node.left, env) or \
            _is_set_expr(node.right, env)
    if isinstance(node, ast.Name):
        return env.get(node.id) == "set"
    if isinstance(node, ast.Subscript) and \
            isinstance(node.value, ast.Name):
        return env.get(node.value.id) == "list_of_set"
    return False


def _scope_env(scope: ast.AST) -> dict:
    """name -> 'set' | 'list_of_set' for simple assignments in a scope."""
    env: dict = {}
    for node in scoped_walk(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            name, value = node.targets[0].id, node.value
            if _is_set_expr(value, env):
                env[name] = "set"
            elif isinstance(value, ast.ListComp) and \
                    _is_set_expr(value.elt, env):
                env[name] = "list_of_set"
            elif isinstance(value, ast.List) and value.elts and \
                    all(_is_set_expr(e, env) for e in value.elts):
                env[name] = "list_of_set"
    return env


def _iter_targets(tree: ast.AST):
    """Every (scope, iterated-expression) pair: for-loops plus
    comprehension generators, attributed to their enclosing scope."""
    scopes = [tree] + [n for n in ast.walk(tree)
                       if isinstance(n, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))]
    for scope in scopes:
        for node in scoped_walk(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield scope, node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    yield scope, gen.iter


@register
class DeterminismRule:
    id = "SC001"
    title = ("determinism: no unseeded RNG, wall clock, id()/hash(), "
             "set or unsorted-filesystem iteration in src/repro/")
    severity = "error"

    def check(self, src, project):
        if not in_scope(src, self.id):
            return

        random_aliases = {"random"}
        bad_imported = {}
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    key = (node.module, alias.name)
                    if node.module == "random" and \
                            alias.name not in RANDOM_MODULE_OK:
                        bad_imported[alias.asname or alias.name] = \
                            "global random RNG"
                    elif key in BAD_FROM_IMPORTS:
                        bad_imported[alias.asname or alias.name] = \
                            BAD_FROM_IMPORTS[key]

        sorted_call_lines = {
            n.lineno for n in ast.walk(src.tree)
            if isinstance(n, ast.Call) and
            isinstance(n.func, ast.Name) and n.func.id == "sorted"}

        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if name in BAD_CALLS:
                yield src.finding(
                    "SC001", node,
                    f"{BAD_CALLS[name]} `{name}()` can leak into "
                    f"simulated results; results must be a pure function "
                    f"of the job spec")
            elif parts[0] in bad_imported and len(parts) == 1:
                yield src.finding(
                    "SC001", node,
                    f"{bad_imported[parts[0]]} `{name}()` (imported) "
                    f"is not deterministic across runs")
            elif len(parts) == 2 and parts[0] in random_aliases and \
                    parts[1] not in RANDOM_MODULE_OK:
                yield src.finding(
                    "SC001", node,
                    f"global random RNG `{name}()`; use a seeded "
                    f"`random.Random(seed)` or numpy `default_rng(seed)`")
            elif len(parts) >= 2 and parts[-2] == "random" and \
                    parts[-1] not in NUMPY_RANDOM_OK and \
                    parts[0] in ("np", "numpy"):
                yield src.finding(
                    "SC001", node,
                    f"numpy global RNG `{name}()`; use "
                    f"`default_rng(seed)`")
            elif isinstance(node.func, ast.Name) and \
                    node.func.id in ("id", "hash") and node.args:
                yield src.finding(
                    "SC001", node,
                    f"builtin `{node.func.id}()` depends on object "
                    f"identity / PYTHONHASHSEED; derive keys from "
                    f"values instead")

        for scope, iter_expr in _iter_targets(src.tree):
            env = _scope_env(scope)
            if _is_set_expr(iter_expr, env):
                yield src.finding(
                    "SC001", iter_expr,
                    "iterating a set: element order varies with "
                    "PYTHONHASHSEED; iterate a sorted() copy or a list "
                    "and keep the set for membership tests")
                continue
            name = dotted_name(iter_expr.func) \
                if isinstance(iter_expr, ast.Call) else None
            if name in FS_LISTING_CALLS and \
                    iter_expr.lineno not in sorted_call_lines:
                yield src.finding(
                    "SC001", iter_expr,
                    f"iterating `{name}()` directly: filesystem order "
                    f"is not deterministic; wrap in sorted(...)")
