"""SC010 — transitive hot-path discipline through the call graph.

SC002 polices what a ``# simcheck: hotpath`` function does *in its own
loops*; it cannot see a ``self._helper()`` call whose helper — or the
helper's helper — logs, formats, reads the wall clock, or touches the
filesystem.  This rule extends the contract through
:mod:`simcheck.graph` + :mod:`simcheck.effects`: every call inside a
marked function's loops that resolves to a project function is checked
against the callee's *closed* effect set, and any of

``blocking-io``, ``logging``, ``formatting``, ``wall-clock``,
``global-rng``, ``exec``, ``filesystem``

produces a finding at the call site, with the witness chain in the
message (``prepare -> _refill -> _trace_miss: f-string build``) so the
fix target is obvious.  Pure allocation in callees is deliberately *not*
flagged — called helpers building their return values is normal; SC002
already bans allocation written directly in the loop body.

Effects detected under a ``raise`` in the callee do not propagate here
(error paths are cold by definition, same carve-out as SC002), because
the effect pass never records them.  Justified transitive effects take
``# simcheck: allow=SC010 <why>`` at the call site.
"""

from __future__ import annotations

from simcheck.effects import Effect
from simcheck.rules import in_scope, register
from simcheck.rules._util import enclosing_raise_spans, in_spans, \
    loops_in, nodes_under

#: Effect categories banned anywhere under a hot loop.
BANNED = (Effect.BLOCKING, Effect.LOGGING, Effect.FORMAT, Effect.TIME,
          Effect.RNG, Effect.EXEC, Effect.FS)


@register
class TransitiveHotPathRule:
    id = "SC010"
    title = ("transitive hot-path discipline: functions called from "
             "hotpath loops must be effect-clean through the call graph")
    severity = "error"

    def check(self, src, project):
        if not in_scope(src, self.id, repro_only=False):
            return
        graph = project.graph
        effects = project.effects
        for func in graph.functions_in(src):
            if not src.has_marker("hotpath", func.node):
                continue
            yield from self._check_function(src, func, graph, effects)

    def _check_function(self, src, func, graph, effects):
        loop_nodes = {id(n) for n in nodes_under(loops_in(func.node))}
        raise_spans = enclosing_raise_spans(func.node)
        reported = set()
        for call, callee in graph.calls_in(func):
            if id(call) not in loop_nodes:
                continue
            # Calls under a raise are cold by definition (the SC002
            # carve-out): `raise EmulationFault(f"...")` may format.
            if in_spans(call.lineno, raise_spans):
                continue
            witnesses = effects.witnesses(callee, BANNED)
            if not witnesses:
                continue
            # One finding per call site; the first witness (stable
            # order: direct effects first, then discovery order of the
            # fixpoint) names the chain.
            key = (call.lineno, call.col_offset)
            if key in reported:
                continue
            reported.add(key)
            w = witnesses[0]
            yield src.finding(
                "SC010", call,
                f"`{func.name}` calls `{callee.name}()` inside a hot "
                f"loop, and it carries {w.effect}: "
                f"{w.via(func.qname).describe()}; hoist the effect out "
                f"of the per-instruction path or allow it explicitly")
