"""Rule registry.  Each rule is a class with:

* ``id`` — ``SCnnn``, unique, referenced by docs / allows / baselines,
* ``title`` — one-line summary shown by ``--list-rules``,
* ``severity`` — ``error`` (gates CI) or ``warning``,
* ``check(src, project)`` — yields :class:`~simcheck.engine.Finding`.

Register with the :func:`register` decorator; the modules below are
imported for their registration side effect.  Fixture files under
``tests/data/simcheck/`` declare which rule they exercise in their
``# simcheck-fixture: SCnnn`` header, and every rule confines itself to
that rule list when checking a fixture (so a SC002 fixture's deliberate
badness never trips SC001 in the same run).
"""

from __future__ import annotations

from typing import List

ALL_RULES: List = []


def register(cls):
    """Class decorator adding one rule (instantiated once) to the suite."""
    rule = cls()
    if any(r.id == rule.id for r in ALL_RULES):
        raise ValueError(f"duplicate rule id {rule.id}")
    ALL_RULES.append(rule)
    ALL_RULES.sort(key=lambda r: r.id)
    return cls


def fixture_rules(src) -> set:
    """Rule ids a ``# simcheck-fixture: SCnnn[,SCnnn]`` header names."""
    for line in src.lines[:5]:
        if "simcheck-fixture" in line:
            _, _, rest = line.partition("simcheck-fixture")
            return {tok.strip(": ")
                    for tok in rest.replace(",", " ").split()
                    if tok.strip(": ").startswith("SC")}
    return set()


def in_scope(src, rule_id: str, repro_only: bool = True,
             tests_exempt: bool = True) -> bool:
    """Common scope gate: fixtures only run the rules they name; real
    files follow the rule's path scope."""
    if src.is_fixture:
        return rule_id in fixture_rules(src)
    if repro_only and not src.in_repro:
        return False
    if tests_exempt and src.is_test:
        return False
    return True


from simcheck.rules import sc001_determinism  # noqa: E402,F401
from simcheck.rules import sc002_hotpath  # noqa: E402,F401
from simcheck.rules import sc003_exec_handlers  # noqa: E402,F401
from simcheck.rules import sc004_cache_key  # noqa: E402,F401
from simcheck.rules import sc005_roundtrip  # noqa: E402,F401
from simcheck.rules import sc006_slots  # noqa: E402,F401
from simcheck.rules import sc007_async_safety  # noqa: E402,F401
from simcheck.rules import sc008_snapshot  # noqa: E402,F401
from simcheck.rules import sc009_registry  # noqa: E402,F401
from simcheck.rules import sc010_hotpath_transitive  # noqa: E402,F401
