"""SC009 — registry closure over the ``JOB_KINDS`` transport registry.

The engine dispatches work by *kind string* (``register_job_kind`` in
``repro.engine.job``): the daemon serializes a job with
``job_to_transport``, a worker resolves the class back with
``job_class(kind)`` and drives ``from_dict``/``run``/``result_from_dict``.
Nothing ties those pieces together at import time — a kind registered
without a ``from_dict``, or a dispatch on a kind string nobody
registered, only fails when that exact job first crosses the wire.
This rule closes the loop statically, whole-program:

* every ``register_job_kind("<kind>", "<module>", "<Class>")`` call with
  literal arguments must point at a resolvable class that provides the
  full transport/engine surface — ``to_dict``, ``from_dict``, ``run``,
  ``result_from_dict``, ``key``, ``label`` — and a class-level
  ``kind = "<kind>"`` attribute matching the registered literal;
* the registering module must be transitively importable from the CLI
  entry point (``repro.cli``): a registration the CLI never imports is
  dead code that still looks wired up;
* conversely, every kind literal the code *dispatches* on —
  ``job_class("k")``, comparisons/membership tests against a ``.kind``
  attribute or ``getattr(j, "kind", ...)`` — must be a registered kind;
* a class that walks like a job (class-level ``kind = "..."`` string
  plus ``to_dict`` and ``run``) must actually be registered.

This is a project-scope rule: it runs once over the whole scanned set
(``check_project``), not per file, and anchors each finding in the file
that owns the offending literal.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from simcheck.rules import in_scope, register
from simcheck.rules._util import dotted_name

#: The surface job_to_transport / job_from_transport / the engine expect.
REQUIRED_METHODS = ("to_dict", "from_dict", "run", "result_from_dict",
                    "key", "label")

#: CLI entry-point modules, tried in order, for the reachability arm.
_CLI_ROOTS = ("repro.cli", "repro.__main__", "repro")


def _literal_str(node: ast.AST) -> Optional[str]:
    return node.value if isinstance(node, ast.Constant) and \
        isinstance(node.value, str) else None


def _class_kind_attr(cls_node: ast.ClassDef) -> Optional[str]:
    """The literal class-level ``kind = "..."`` value, if present."""
    for stmt in cls_node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "kind":
                    return _literal_str(stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name) and \
                stmt.target.id == "kind" and stmt.value is not None:
            return _literal_str(stmt.value)
    return None


def _is_kind_expr(node: ast.AST) -> bool:
    """Does this expression read a job-kind value?  ``x.kind`` or
    ``getattr(x, "kind", ...)``."""
    if isinstance(node, ast.Attribute) and node.attr == "kind":
        return True
    if isinstance(node, ast.Call) and \
            isinstance(node.func, ast.Name) and \
            node.func.id == "getattr" and len(node.args) >= 2 and \
            _literal_str(node.args[1]) == "kind":
        return True
    return False


def _kind_literals_in(node: ast.AST) -> List[Tuple[str, ast.AST]]:
    """String literals compared against a kind expression."""
    out: List[Tuple[str, ast.AST]] = []
    if not isinstance(node, ast.Compare):
        return out
    sides = [node.left] + list(node.comparators)
    if not any(_is_kind_expr(side) for side in sides):
        return out
    for side in sides:
        lit = _literal_str(side)
        if lit is not None:
            out.append((lit, side))
        elif isinstance(side, (ast.Tuple, ast.List, ast.Set)):
            for elt in side.elts:
                lit = _literal_str(elt)
                if lit is not None:
                    out.append((lit, elt))
    return out


@register
class RegistryClosureRule:
    id = "SC009"
    title = ("registry closure: every registered job kind has the full "
             "transport surface + CLI path; no unregistered dispatch")
    severity = "error"
    scope = "project"

    def check(self, src, project):
        # Per-file pass intentionally empty: see check_project.
        return iter(())

    def check_project(self, project):
        graph = project.graph
        registrations = self._registrations(graph)
        registered = {kind for kind, *_ in registrations}

        for kind, module, attr, src, call in registrations:
            yield from self._check_entry(graph, kind, module, attr,
                                         src, call)

        yield from self._check_dispatches(graph, registered)
        yield from self._check_unregistered_jobs(graph, registered)

    # -- collection --------------------------------------------------------------

    def _eligible(self, src) -> bool:
        return in_scope(src, self.id)

    def _registrations(self, graph):
        out = []
        for name in sorted(graph.modules):
            mod = graph.modules[name]
            if not self._eligible(mod.src):
                continue
            for node in ast.walk(mod.src.tree):
                if not (isinstance(node, ast.Call) and
                        (dotted_name(node.func) or "").split(".")[-1]
                        == "register_job_kind"):
                    continue
                lits = [_literal_str(a) for a in node.args[:3]]
                kw = {k.arg: _literal_str(k.value)
                      for k in node.keywords}
                kind = lits[0] if lits else kw.get("kind")
                module = lits[1] if len(lits) > 1 else kw.get("module")
                attr = lits[2] if len(lits) > 2 else kw.get("attr")
                if kind is None:
                    continue  # dynamic registration: out of scope
                out.append((kind, module, attr, mod.src, node))
        return out

    # -- arm 1: registered entries are complete ----------------------------------

    def _resolve_class(self, graph, module, attr):
        if module in graph.modules and attr:
            cls = graph.modules[module].classes.get(attr)
            if cls is not None:
                return cls
        return graph.find_class(attr) if attr else None

    def _check_entry(self, graph, kind, module, attr, src, call):
        cls = self._resolve_class(graph, module, attr)
        if cls is None:
            yield src.finding(
                "SC009", call,
                f"job kind '{kind}' registers `{module}.{attr}`, which "
                f"does not resolve to a class in the scanned tree")
            return
        missing = [m for m in REQUIRED_METHODS
                   if cls.resolve_method(m) is None]
        if missing:
            yield src.finding(
                "SC009", call,
                f"job kind '{kind}' class `{cls.name}` lacks "
                f"{', '.join(missing)}; the transport/engine surface "
                f"(to_dict/from_dict/run/result_from_dict/key/label) "
                f"must be complete")
        declared = _class_kind_attr(cls.node)
        if declared != kind:
            yield src.finding(
                "SC009", call,
                f"job kind '{kind}' class `{cls.name}` declares "
                f"kind = {declared!r}; the class attribute must match "
                f"the registered literal or dispatch splits")
        if not src.is_fixture:
            yield from self._check_cli_reachable(graph, kind, src, call)

    def _check_cli_reachable(self, graph, kind, src, call):
        roots = [r for r in _CLI_ROOTS if r in graph.modules]
        if not roots:
            return  # partial scan without the CLI: nothing to witness
        reachable = graph.module_reachable_from(roots[0])
        registering = None
        for name, mod in graph.modules.items():
            if mod.src is src:
                registering = name
                break
        if registering is not None and registering not in reachable:
            yield src.finding(
                "SC009", call,
                f"job kind '{kind}' is registered in `{registering}`, "
                f"which is never imported from `{roots[0]}`: the "
                f"registration does not run in a CLI process")

    # -- arm 2: dispatches name registered kinds ---------------------------------

    def _registry_aware(self, mod) -> bool:
        """The kind namespace belongs to the job registry: ``.kind``
        comparisons are only checked in modules that touch it (import
        ``repro.engine.job`` or call the registry functions) — minicc's
        token ``.kind`` and other unrelated namespaces stay out."""
        if any(name == "repro.engine.job" or
               name.startswith("repro.engine.job.")
               for name in mod.imported_modules):
            return True
        for node in ast.walk(mod.src.tree):
            if isinstance(node, ast.Call) and \
                    (dotted_name(node.func) or "").split(".")[-1] in \
                    ("register_job_kind", "job_class"):
                return True
        return False

    def _check_dispatches(self, graph, registered):
        for name in sorted(graph.modules):
            mod = graph.modules[name]
            if not self._eligible(mod.src) or \
                    not self._registry_aware(mod):
                continue
            for node in ast.walk(mod.src.tree):
                if isinstance(node, ast.Call) and \
                        (dotted_name(node.func) or "").split(".")[-1] \
                        == "job_class":
                    lit = _literal_str(node.args[0]) if node.args \
                        else None
                    if lit is not None and lit not in registered:
                        yield mod.src.finding(
                            "SC009", node,
                            f"job_class('{lit}') dispatches a kind "
                            f"that is never registered")
                else:
                    for lit, at in _kind_literals_in(node):
                        if lit not in registered:
                            yield mod.src.finding(
                                "SC009", at,
                                f"kind comparison against '{lit}', "
                                f"which is never registered; dead "
                                f"branch or missing register_job_kind")

    # -- arm 3: job-shaped classes are registered --------------------------------

    def _check_unregistered_jobs(self, graph, registered):
        for qname in sorted(graph.classes):
            cls = graph.classes[qname]
            if not self._eligible(cls.src):
                continue
            kind = _class_kind_attr(cls.node)
            if kind is None or kind in registered:
                continue
            method_names = {m for m in ("to_dict", "run")
                            if cls.resolve_method(m) is not None}
            if method_names == {"to_dict", "run"}:
                yield cls.src.finding(
                    "SC009", cls.node,
                    f"`{cls.name}` declares kind = '{kind}' with a "
                    f"job surface but is never registered via "
                    f"register_job_kind; the transport cannot "
                    f"round-trip it")
