"""SC002 — hot-path discipline for ``# simcheck: hotpath`` functions.

The throughput PR's contract (DESIGN.md §6.1/§7.2): the per-instruction
pipeline — ``FunctionalFrontend.produce_batch``, ``RunaheadQueue.prepare``,
``OoOCore.process_batch``, ``OoOCore._handle_mispredict`` — pays for
observability with **one** ``_obs is None`` test per batch-level call and
does no logging, formatting, or avoidable allocation inside its loops.
The CI throughput-smoke job measures the consequence; this rule pins the
cause.  A marked function may not:

* test ``_obs`` (or a local bound from ``self._obs``) against ``None``
  more than once,
* touch ``_obs`` inside a for/while loop at all,
* call ``print``/``logging``/``warnings``/``time`` functions, an
  obs-derived method, or ``getattr``/``setattr``/``vars``/``globals``
  inside a loop,
* build f-strings / ``%`` / ``.format`` strings inside a loop, except
  under a ``raise`` (error paths are cold by definition),
* create comprehensions, generator expressions, lambdas, or nested
  defs/classes inside a loop.

Mark a function with ``# simcheck: hotpath`` on (or directly above) its
``def`` line to opt it in.
"""

from __future__ import annotations

import ast

from simcheck.rules import in_scope, register
from simcheck.rules._util import (dotted_name, enclosing_raise_spans,
                                  in_spans, loops_in, walk_functions)

_LOOP_BANNED_MODULE_CALLS = ("logging.", "warnings.", "time.")
_LOOP_BANNED_NAME_CALLS = {"print", "getattr", "setattr", "vars",
                           "globals", "locals"}


def _obs_locals(func: ast.FunctionDef) -> set:
    """Local names bound from a ``*._obs`` attribute load."""
    names = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Attribute) and \
                node.value.attr == "_obs":
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_obs_expr(node: ast.AST, obs_names: set) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == "_obs") or \
        (isinstance(node, ast.Name) and node.id in obs_names)


@register
class HotPathRule:
    id = "SC002"
    title = ("hot-path discipline: one _obs check per call, no "
             "logging/formatting/allocation in marked functions' loops")
    severity = "error"

    def check(self, src, project):
        if not in_scope(src, self.id, repro_only=False):
            return
        for func in walk_functions(src.tree):
            if not src.has_marker("hotpath", func):
                continue
            yield from self._check_function(src, func)

    def _check_function(self, src, func):
        obs_names = _obs_locals(func)

        none_tests = []
        for node in ast.walk(func):
            if isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                if any(_is_obs_expr(op, obs_names) for op in operands):
                    none_tests.append(node)
        if len(none_tests) > 1:
            for extra in none_tests[1:]:
                yield src.finding(
                    "SC002", extra,
                    f"`{func.name}` tests _obs more than once; the "
                    f"hook contract is one `_obs is None` check per "
                    f"batch-level call (DESIGN.md §7.2)")

        loops = loops_in(func)
        raise_spans = enclosing_raise_spans(func)
        seen = set()
        for loop in loops:
            for node in ast.walk(loop):
                key = (id(node),)
                if key in seen:
                    continue
                seen.add(key)
                yield from self._check_loop_node(src, func, node,
                                                obs_names, raise_spans)

    def _check_loop_node(self, src, func, node, obs_names, raise_spans):
        if isinstance(node, ast.Attribute) and node.attr == "_obs":
            yield src.finding(
                "SC002", node,
                f"`{func.name}` touches _obs inside a loop; hoist the "
                f"observability hook out of the per-instruction path")
            return
        if isinstance(node, ast.Call):
            name = dotted_name(node.func) or ""
            root = name.split(".")[0]
            if name in _LOOP_BANNED_NAME_CALLS or \
                    any(name.startswith(p)
                        for p in _LOOP_BANNED_MODULE_CALLS):
                yield src.finding(
                    "SC002", node,
                    f"`{func.name}` calls `{name}()` inside a loop; "
                    f"logging/introspection is banned on the hot path")
            elif isinstance(node.func, ast.Attribute):
                if node.func.attr == "format" or \
                        _is_obs_expr(node.func.value, obs_names) or \
                        root in obs_names:
                    if node.func.attr == "format" and \
                            in_spans(node.lineno, raise_spans):
                        return
                    what = "str.format" if node.func.attr == "format" \
                        else f"obs method `{name}`"
                    yield src.finding(
                        "SC002", node,
                        f"`{func.name}` calls {what} inside a loop")
            return
        if isinstance(node, ast.JoinedStr) and \
                not in_spans(node.lineno, raise_spans):
            yield src.finding(
                "SC002", node,
                f"`{func.name}` builds an f-string inside a loop "
                f"(allocation on the per-instruction path); only raise "
                f"paths may format")
        elif isinstance(node, ast.BinOp) and \
                isinstance(node.op, ast.Mod) and \
                isinstance(node.left, (ast.Constant, ast.JoinedStr)) and \
                isinstance(getattr(node.left, "value", None), str) and \
                not in_spans(node.lineno, raise_spans):
            yield src.finding(
                "SC002", node,
                f"`{func.name}` %-formats a string inside a loop")
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp, ast.Lambda)):
            yield src.finding(
                "SC002", node,
                f"`{func.name}` creates a "
                f"{type(node).__name__} inside a loop; build it once "
                f"outside the per-instruction path")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            yield src.finding(
                "SC002", node,
                f"`{func.name}` defines `{node.name}` inside a loop")
