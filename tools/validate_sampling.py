#!/usr/bin/env python
"""Validate checkpointed sampling against full simulation.

Runs every registry workload twice — once full-detail, once through
:func:`repro.simulator.sampling.sample_workload` — and reports the
per-workload and mean absolute IPC error.  Exits nonzero when the mean
exceeds the threshold (default 5%), making this the acceptance gate for
the sampling subsystem.

Both sides share one experiment engine: the full runs fan out in
parallel as ``sim`` jobs, each sampled run fans its detailed intervals
out as ``sample`` jobs, and everything is cached content-addressed, so
a re-run after an unrelated edit is mostly cache hits.

Notes on methodology:

* Runs are compared **uncapped by default** (``--max-instructions 0``)
  apart from a per-workload feasibility cap (``--max-instructions N``):
  capping both sides at a point inside a workload's warm-up transient
  makes the full run transient-dominated while sampling's leading
  fast-forward skips it, which inflates the apparent error (the bias is
  the cap's, not the sampler's).
* The default duty cycle (10k detailed / 40k fast-forwarded = 20%)
  matches the sampled-simulation regime the paper targets.

Run from the repo root::

    PYTHONPATH=src python tools/validate_sampling.py --jobs 8
    PYTHONPATH=src python tools/validate_sampling.py --format md
"""

import argparse
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import ExperimentEngine, ResultStore, SimJob  # noqa: E402
from repro.simulator.sampling import sample_workload  # noqa: E402
from repro.workloads import workload_names  # noqa: E402


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="sampled-vs-full IPC validation over all workloads")
    parser.add_argument("--technique", default="conv",
                        help="technique to validate (default: conv)")
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "medium"),
                        help="workload input scale (default: small)")
    parser.add_argument("--detail-length", type=int, default=10_000)
    parser.add_argument("--ff-length", type=int, default=40_000)
    parser.add_argument("--max-instructions", type=int, default=2_000_000,
                        help="per-workload feasibility cap "
                             "(default: 2000000; 0 = uncapped)")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="mean |IPC error| bound (default: 0.05)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="engine worker processes "
                             "(default: os.cpu_count())")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent result cache (default: a "
                             "throwaway temporary directory)")
    parser.add_argument("--workloads", default=None,
                        help="comma list to restrict to (default: all)")
    parser.add_argument("--format", default="table",
                        choices=("table", "md"),
                        help="output format (default: table)")
    return parser.parse_args(argv)


def render(rows, mean_err, fmt):
    headers = ("workload", "full IPC", "sampled IPC", "abs error",
               "intervals", "detail")
    if fmt == "md":
        lines = ["| " + " | ".join(headers) + " |",
                 "|" + "|".join("---" for _ in headers) + "|"]
        for row in rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        lines.append(f"| **mean** | | | **{mean_err * 100:.2f}%** | | |")
        return "\n".join(lines)
    widths = [max(len(str(r[i])) for r in rows + [headers])
              for i in range(len(headers))]
    fmt_row = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt_row.format(*headers),
             fmt_row.format(*("-" * w for w in widths))]
    lines += [fmt_row.format(*(str(c) for c in row)) for row in rows]
    lines.append(f"mean |IPC error| = {mean_err * 100:.2f}%")
    return "\n".join(lines)


def main(argv=None):
    args = parse_args(argv)
    cap = args.max_instructions or None
    names = (args.workloads.split(",") if args.workloads
             else workload_names())

    tmp = None
    cache_dir = args.cache_dir
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-validate-")
        cache_dir = tmp.name
    engine = ExperimentEngine(store=ResultStore(cache_dir),
                              jobs=args.jobs)

    start = time.perf_counter()
    full_jobs = [SimJob(workload=name, technique=args.technique,
                        scale=args.scale, max_instructions=cap)
                 for name in names]
    full_outcomes = engine.run(full_jobs)
    failed = [o for o in full_outcomes if o.result is None]
    if failed:
        for o in failed:
            print(f"validate-sampling: full run failed: "
                  f"{o.job.label}: {o.error}", file=sys.stderr)
        return 1

    rows = []
    errors = []
    for name, full in zip(names, full_outcomes):
        sampled = sample_workload(
            name, technique=args.technique, scale=args.scale,
            detail_length=args.detail_length,
            fastforward_length=args.ff_length,
            max_instructions=cap, engine=engine)
        err = abs(sampled.ipc - full.result.ipc) / full.result.ipc
        errors.append(err)
        rows.append((name, f"{full.result.ipc:.4f}",
                     f"{sampled.ipc:.4f}", f"{err * 100:.2f}%",
                     sampled.intervals,
                     f"{sampled.detail_fraction * 100:.0f}%"))
        print(f"validate-sampling: {name}: full={full.result.ipc:.4f} "
              f"sampled={sampled.ipc:.4f} err={err * 100:.2f}%",
              file=sys.stderr)

    wall = time.perf_counter() - start
    mean_err = sum(errors) / len(errors)
    print(render(rows, mean_err, args.format))
    print(f"\n{len(names)} workloads validated in {wall:.1f}s "
          f"(scale={args.scale}, detail={args.detail_length}, "
          f"ff={args.ff_length}, cap={cap})", file=sys.stderr)
    if tmp is not None:
        tmp.cleanup()
    if mean_err > args.threshold:
        print(f"validate-sampling: FAIL: mean |IPC error| "
              f"{mean_err * 100:.2f}% exceeds "
              f"{args.threshold * 100:.2f}%", file=sys.stderr)
        return 1
    print(f"validate-sampling: OK — mean |IPC error| "
          f"{mean_err * 100:.2f}% <= {args.threshold * 100:.2f}%",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
