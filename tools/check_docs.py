#!/usr/bin/env python
"""Documentation checks for the top-level markdown files.

Four passes, all run by CI's docs job (and by ``tests/test_docs.py``):

1. **Links** — every relative link ``[text](path)`` must point at an
   existing file, and every ``#anchor`` (same-file or cross-file) must
   match a heading under GitHub's slugification rules.
2. **Code blocks** — every fenced ```` ```python ```` block must
   compile (``pycon``/``>>>`` blocks are covered by the doctest pass
   instead).
3. **Doctests** — ``python -m doctest`` semantics over the files in
   :data:`DOCTEST_FILES`; examples must be deterministic.
4. **simcheck rules** — every ``SCnnn`` rule id a checked file mentions
   must exist in the registered suite (no docs for phantom rules), and
   every registered rule must be documented in DESIGN.md (no phantom
   rules for docs).
5. **DESIGN section numbers** — both directions: every ``§N`` /
   ``§N.M`` reference in a checked file must name an existing
   DESIGN.md numbered heading (references always mean DESIGN.md — the
   other docs say "DESIGN.md §N" explicitly), and DESIGN.md's own
   numbering must be well-formed: top-level sections contiguous from
   1, subsections contiguous from ``N.1`` under their parent.
   Inserting a chapter without renumbering the rest (or renumbering
   without chasing cross-references) fails this pass.

Usage::

    PYTHONPATH=src python tools/check_docs.py

Exits nonzero listing every problem found.
"""

from __future__ import annotations

import doctest
import os
import re
import sys
from typing import Dict, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Files whose links and ```python blocks are checked.  Deliberately a
#: curated list: ISSUE/PAPERS/SNIPPETS hold external or historical
#: content that is not ours to keep link-clean.
CHECKED_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "CONTRIBUTING.md",
    "ROADMAP.md",
    "benchmarks/README.md",
)

#: Files whose ``>>>`` examples are executed.
DOCTEST_FILES = ("README.md", "DESIGN.md")

_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
_FENCE_RE = re.compile(r"^(```+|~~~+)\s*([\w+-]*)\s*$")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # strip links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_slugs(text: str) -> Dict[str, int]:
    """Map of anchor slug -> occurrence count (GitHub dedups with -1, -2)."""
    slugs: Dict[str, int] = {}
    in_fence = False
    for line in text.splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if not m:
            continue
        base = slugify(m.group(1))
        n = slugs.get(base, 0)
        slugs[base] = n + 1
        if n:  # GitHub's duplicate-heading suffix
            slugs[f"{base}-{n}"] = 1
    return slugs


def extract_links(text: str) -> List[Tuple[int, str]]:
    """All non-image inline link targets as (1-based line, target)."""
    links: List[Tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in _LINK_RE.finditer(line):
            links.append((lineno, m.group(1)))
    return links


def check_file_links(relpath: str, root: str = REPO_ROOT) -> List[str]:
    """Problems with the relative links/anchors of one markdown file."""
    path = os.path.join(root, relpath)
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    problems: List[str] = []
    for lineno, target in extract_links(text):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        target, _, anchor = target.partition("#")
        if target:
            dest = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            if not os.path.exists(dest):
                problems.append(f"{relpath}:{lineno}: broken link "
                                f"-> {target}")
                continue
        else:
            dest = path
        if anchor:
            if not dest.endswith(".md") or not os.path.isfile(dest):
                continue  # anchors into non-markdown: not checkable
            with open(dest, encoding="utf-8") as fh:
                slugs = heading_slugs(fh.read())
            if anchor not in slugs:
                problems.append(f"{relpath}:{lineno}: broken anchor "
                                f"-> #{anchor}")
    return problems


def python_blocks(text: str) -> List[Tuple[int, str]]:
    """Fenced ```python blocks as (1-based first-content line, source)."""
    blocks: List[Tuple[int, str]] = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        m = _FENCE_RE.match(lines[i])
        if m and m.group(2) == "python":
            fence, start = m.group(1), i + 1
            j = start
            while j < len(lines) and not lines[j].startswith(fence):
                j += 1
            blocks.append((start + 1, "\n".join(lines[start:j])))
            i = j + 1
        elif m:  # some other fence: skip to its close
            fence = m.group(1)
            i += 1
            while i < len(lines) and not lines[i].startswith(fence):
                i += 1
            i += 1
        else:
            i += 1
    return blocks


def check_file_codeblocks(relpath: str, root: str = REPO_ROOT) -> List[str]:
    """Problems compiling the ```python blocks of one markdown file."""
    path = os.path.join(root, relpath)
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    problems: List[str] = []
    for lineno, source in python_blocks(text):
        if source.lstrip().startswith(">>>"):
            continue  # doctest-style: exercised by the doctest pass
        try:
            compile(source, f"{relpath}:{lineno}", "exec")
        except SyntaxError as exc:
            problems.append(f"{relpath}:{lineno}: python block does not "
                            f"compile: {exc.msg} (block line {exc.lineno})")
    return problems


def check_file_doctests(relpath: str, root: str = REPO_ROOT) -> List[str]:
    """Doctest failures of one markdown file (module_relative=False)."""
    failures, _ = doctest.testfile(os.path.join(root, relpath),
                                   module_relative=False, verbose=False)
    return [f"{relpath}: {failures} doctest failure(s)"] if failures else []


_SC_RULE_RE = re.compile(r"\bSC\d{3}\b")


def check_simcheck_rules(root: str = REPO_ROOT) -> List[str]:
    """Cross-check doc-mentioned SCnnn ids against the registered suite."""
    if root not in sys.path:
        sys.path.insert(0, root)  # the repo-root `simcheck` bootstrap stub
    from simcheck import ALL_RULES
    registered = {rule.id for rule in ALL_RULES}

    problems: List[str] = []
    design_mentions: set = set()
    for relpath in CHECKED_FILES:
        with open(os.path.join(root, relpath), encoding="utf-8") as fh:
            text = fh.read()
        for lineno, line in enumerate(text.splitlines(), 1):
            for rule_id in _SC_RULE_RE.findall(line):
                if relpath == "DESIGN.md":
                    design_mentions.add(rule_id)
                if rule_id not in registered:
                    problems.append(
                        f"{relpath}:{lineno}: mentions simcheck rule "
                        f"{rule_id}, which is not in the suite "
                        f"(python -m simcheck --list-rules)")
    for rule_id in sorted(registered - design_mentions):
        problems.append(
            f"DESIGN.md: simcheck rule {rule_id} is registered but "
            f"never documented (add it to the machine-checked "
            f"invariants section)")
    return problems


_SECTION_REF_RE = re.compile(r"§\s?(\d+(?:\.\d+)?)")
_NUMBERED_HEADING_RE = re.compile(r"^(#{2,3})\s+(\d+(?:\.\d+)?)\.?\s+\S")


def design_section_numbers(text: str) -> Tuple[Dict[str, int], List[str]]:
    """DESIGN.md's numbered headings: (number -> line, numbering problems).

    Numbering must be well-formed — ``## N.`` sections contiguous from
    1, ``### N.M`` subsections contiguous from ``.1`` under the current
    section — so a chapter insertion that forgets to renumber is caught
    here even before any cross-reference dangles.
    """
    numbers: Dict[str, int] = {}
    problems: List[str] = []
    in_fence = False
    last_section = 0
    last_sub = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _NUMBERED_HEADING_RE.match(line)
        if not m:
            continue
        level, number = m.group(1), m.group(2)
        if number in numbers:
            problems.append(f"DESIGN.md:{lineno}: duplicate section "
                            f"number {number} (first at line "
                            f"{numbers[number]})")
            continue
        numbers[number] = lineno
        if level == "##":
            if "." in number or int(number) != last_section + 1:
                problems.append(
                    f"DESIGN.md:{lineno}: section {number} out of "
                    f"sequence (expected {last_section + 1})")
            last_section = int(number.partition(".")[0])
            last_sub = 0
        else:
            parent, _, sub = number.partition(".")
            if (not sub or int(parent) != last_section
                    or int(sub) != last_sub + 1):
                problems.append(
                    f"DESIGN.md:{lineno}: subsection {number} out of "
                    f"sequence (expected {last_section}.{last_sub + 1})")
            if sub:
                last_sub = int(sub)
    return numbers, problems


def check_design_sections(root: str = REPO_ROOT) -> List[str]:
    """Cross-check §N references against DESIGN.md's numbered headings."""
    with open(os.path.join(root, "DESIGN.md"), encoding="utf-8") as fh:
        numbers, problems = design_section_numbers(fh.read())
    for relpath in CHECKED_FILES:
        with open(os.path.join(root, relpath), encoding="utf-8") as fh:
            text = fh.read()
        in_fence = False
        for lineno, line in enumerate(text.splitlines(), 1):
            if _FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for ref in _SECTION_REF_RE.findall(line):
                if ref not in numbers:
                    problems.append(
                        f"{relpath}:{lineno}: references DESIGN.md "
                        f"§{ref}, which does not exist (sections run "
                        f"1-{max(int(n) for n in numbers if '.' not in n)})")
    return problems


def main(argv: List[str] = ()) -> int:
    problems: List[str] = []
    for relpath in CHECKED_FILES:
        problems += check_file_links(relpath)
        problems += check_file_codeblocks(relpath)
    for relpath in DOCTEST_FILES:
        problems += check_file_doctests(relpath)
    problems += check_simcheck_rules()
    problems += check_design_sections()
    for problem in problems:
        print(problem, file=sys.stderr)
    n_files = len(set(CHECKED_FILES) | set(DOCTEST_FILES))
    if problems:
        print(f"check_docs: {len(problems)} problem(s) in {n_files} "
              f"file(s)", file=sys.stderr)
        return 1
    print(f"check_docs: {n_files} file(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
