#!/usr/bin/env python
"""CI smoke test for checkpointed sampling (`repro sample`).

Exercises the sampled-simulation contract end-to-end:

1. run checkpointed sampling on two workloads in-process (no engine),
2. re-run through an embedded engine with ``--jobs 2`` and again on a
   warm cache — all three must produce digest-identical
   ``SampledResult``s (interval jobs are deterministic and
   content-addressed, so dispatch topology must not matter),
3. start a real ``repro serve`` daemon and run the same sampling through
   it — the daemon path must join the same digest, and a second
   daemon-path run must be served from the daemon's cache,
4. compare sampled IPC against the full (unsampled) simulation of each
   workload and enforce a relative-error bound.

Run from the repo root: ``PYTHONPATH=src python tools/sample_smoke.py``.
Exits nonzero with a diagnostic on any violation.
"""

import os
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import ExperimentEngine, ResultStore, SimJob  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.simulator.sampling import sample_workload  # noqa: E402

WAIT_SECONDS = 30

#: Two structurally different workloads: a graph kernel and a streaming
#: FP kernel.  Tiny scale keeps the smoke under a minute.
WORKLOADS = ("gap.bfs", "spec.fp.saxpy_like")
TECHNIQUE = "conv"
DETAIL, FF = 2000, 6000

#: Sampled-vs-full IPC bound.  Tiny-scale runs are a few tens of
#: thousands of instructions, so per-workload sampling error is noisy —
#: the production bound (mean <= 5% across all 24 workloads at small
#: scale) lives in tools/validate_sampling.py; this smoke only guards
#: against gross breakage (e.g. snapshots restoring cold state).
IPC_ERROR_BOUND = 0.30


def fail(message):
    print(f"sample-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def sample(workload, engine=None):
    return sample_workload(workload, technique=TECHNIQUE, scale="tiny",
                           detail_length=DETAIL, fastforward_length=FF,
                           engine=engine)


def main():
    with tempfile.TemporaryDirectory(prefix="repro-sample-smoke-") as tmp:
        # 1. In-process reference digests.
        serial = {w: sample(w) for w in WORKLOADS}

        # 2. Embedded engine, 2 workers, then warm cache.
        engine = ExperimentEngine(
            store=ResultStore(os.path.join(tmp, "cache")), jobs=2)
        for w in WORKLOADS:
            parallel = sample(w, engine=engine)
            if parallel.digest() != serial[w].digest():
                fail(f"{w}: --jobs 2 digest {parallel.digest()[:16]} != "
                     f"serial {serial[w].digest()[:16]}")
            warm = sample(w, engine=engine)
            if warm.digest() != serial[w].digest():
                fail(f"{w}: warm-cache digest diverged")

        # 3. Daemon path.
        socket_path = os.path.join(tmp, "repro.sock")
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", socket_path,
             "--cache-dir", os.path.join(tmp, "daemon-cache"),
             "--jobs", "2"],
            env={**os.environ,
                 "PYTHONPATH": os.path.join(
                     os.path.dirname(__file__), "..", "src")})
        try:
            deadline = time.time() + WAIT_SECONDS
            while not os.path.exists(socket_path):
                if daemon.poll() is not None:
                    fail(f"daemon exited early (code {daemon.returncode})")
                if time.time() > deadline:
                    fail(f"daemon socket never appeared ({WAIT_SECONDS}s)")
                time.sleep(0.1)

            for w in WORKLOADS:
                with ServiceClient(socket_path) as client:
                    via_daemon = sample(w, engine=client)
                if via_daemon.digest() != serial[w].digest():
                    fail(f"{w}: daemon-path digest diverged")
                # Sample jobs are content-addressed: the re-run must be
                # served from the daemon's store, visibly faster or not,
                # but above all digest-identical.
                with ServiceClient(socket_path) as client:
                    warm = sample(w, engine=client)
                if warm.digest() != serial[w].digest():
                    fail(f"{w}: warm daemon-path digest diverged")

            ServiceClient(socket_path).shutdown()
            try:
                daemon.wait(timeout=WAIT_SECONDS)
            except subprocess.TimeoutExpired:
                fail("daemon did not exit after shutdown op")
        finally:
            if daemon.poll() is None:
                daemon.terminate()
                try:
                    daemon.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    daemon.kill()

        # 4. Sampled-vs-full IPC bound.
        engine_full = ExperimentEngine(
            store=ResultStore(os.path.join(tmp, "full-cache")), jobs=2)
        for w in WORKLOADS:
            outcome = engine_full.run(
                [SimJob(workload=w, technique=TECHNIQUE, scale="tiny")])[0]
            if outcome.result is None:
                fail(f"{w}: full reference run failed: {outcome.error}")
            full_ipc = outcome.result.ipc
            err = abs(serial[w].ipc - full_ipc) / full_ipc
            print(f"sample-smoke: {w}: sampled IPC {serial[w].ipc:.4f} "
                  f"vs full {full_ipc:.4f} (err {err * 100:.2f}%)")
            if err > IPC_ERROR_BOUND:
                fail(f"{w}: sampled-vs-full IPC error {err * 100:.1f}% "
                     f"exceeds {IPC_ERROR_BOUND * 100:.0f}%")

    digests = ", ".join(
        f"{w}={serial[w].digest()[:12]}" for w in WORKLOADS)
    print(f"sample-smoke: OK — serial, --jobs 2, warm cache and daemon "
          f"paths all digest-identical ({digests})")


if __name__ == "__main__":
    main()
