#!/usr/bin/env python
"""CI smoke test for the learned IPC surrogate (`repro.analysis.surrogate`).

Proves the surrogate's committed contracts end-to-end from a cold
cache, in CI seconds:

1. simulate a seed-pinned mini sweep (one workload, all four
   techniques, a predictor x ROB grid) through a real embedded engine,
2. harvest + split + train, and enforce the committed differential
   bound: held-out mean |IPC error| <= ``GUARDRAIL_MAX_MEAN_ERROR``,
3. retrain on the *shuffled* training set — the artifact must be
   bit-identical (training is a pure function of the point set), and
   the digest must survive a save/load JSON round-trip,
4. run a ``kind="predict"`` batch through the engine twice — the
   second run must be a cache hit with identical predictions, and the
   perfect >= gshare metamorphic repair must hold across the grid.

The model artifact and its evaluation are left in ``.surrogate-smoke/``
so CI can upload them when the bound fails.

Run from the repo root: ``PYTHONPATH=src python tools/surrogate_smoke.py``.
Exits nonzero with a diagnostic on any violation.
"""

import itertools
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.surrogate import (GUARDRAIL_MAX_MEAN_ERROR,  # noqa: E402
                                      PredictJob, SurrogateModel,
                                      evaluate, harvest, predict_jobs,
                                      split)
from repro.engine import ExperimentEngine, ResultStore, SimJob  # noqa: E402
from repro.simulator.simulation import ALL_TECHNIQUES  # noqa: E402

ARTIFACT_DIR = ".surrogate-smoke"

#: Mirror of the seed-pinned sweep tests/test_surrogate.py trains on:
#: small enough to simulate in seconds, varied enough (predictor
#: strength x ROB size x technique) that the model learns real
#: structure rather than a constant.
SWEEP_AXES = {
    "predictor_kind": ("bimodal", "gshare", "tournament", "tage",
                       "perfect"),
    "rob_size": (32, 128),
}
WORKLOAD = "gap.bfs"
MAX_INSTRUCTIONS = 3000


def fail(message):
    print(f"surrogate-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def sweep_jobs():
    jobs = []
    for kind, rob in itertools.product(*SWEEP_AXES.values()):
        for technique in ALL_TECHNIQUES:
            jobs.append(SimJob(
                workload=WORKLOAD, technique=technique, scale="tiny",
                max_instructions=MAX_INSTRUCTIONS,
                config_overrides={"predictor_kind": kind,
                                  "rob_size": rob}))
    return jobs


def main():
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    with tempfile.TemporaryDirectory(prefix="repro-surrogate-smoke-") as tmp:
        # 1. Cold cache -> real simulations.
        engine = ExperimentEngine(
            store=ResultStore(os.path.join(tmp, "cache")), jobs=2)
        jobs = sweep_jobs()
        outcomes = engine.run(jobs)
        failed = [o for o in outcomes if o.result is None]
        if failed:
            fail(f"{len(failed)}/{len(jobs)} sweep sims failed "
                 f"(first: {failed[0].error})")

        # 2. Harvest + differential bound.
        points = harvest(engine.store)
        if len(points) != len(jobs):
            fail(f"harvested {len(points)} points from a "
                 f"{len(jobs)}-sim sweep")
        train_points, held = split(points, holdout=0.25, seed=0)
        model = SurrogateModel.train(train_points, seed=0, kind="gbm",
                                     members=3, estimators=60)
        scores = evaluate(model, held)
        report_path = os.path.join(ARTIFACT_DIR, "evaluation.json")
        with open(report_path, "w") as fh:
            json.dump({"bound": GUARDRAIL_MAX_MEAN_ERROR, **scores},
                      fh, indent=2)
        print(f"surrogate-smoke: held-out mean |IPC error| "
              f"{scores['mean_rel_error'] * 100:.2f}% over {scores['n']} "
              f"points (bound {GUARDRAIL_MAX_MEAN_ERROR * 100:.0f}%)")
        if scores["mean_rel_error"] > GUARDRAIL_MAX_MEAN_ERROR:
            fail(f"held-out mean |IPC error| "
                 f"{scores['mean_rel_error'] * 100:.2f}% exceeds the "
                 f"committed {GUARDRAIL_MAX_MEAN_ERROR * 100:.0f}% bound "
                 f"(see {report_path})")

        # 3. Digest stability: order-free training + JSON round-trip.
        shuffled = SurrogateModel.train(list(reversed(train_points)),
                                        seed=0, kind="gbm", members=3,
                                        estimators=60)
        if model.to_dict() != shuffled.to_dict():
            fail("shuffled training set changed the artifact "
                 "(training is not a pure function of the point set)")
        model_path = os.path.join(ARTIFACT_DIR, "model.json")
        model.save(model_path)
        if SurrogateModel.load(model_path).digest() != model.digest():
            fail("model digest did not survive a save/load round-trip")

        # 4. Cached predict batches + the metamorphic repair.
        inline = predict_jobs(model, jobs)
        for run in ("cold", "warm"):
            outcome = engine.run([PredictJob.for_jobs(model, jobs)])[0]
            if outcome.result is None:
                fail(f"predict batch failed on {run} run: {outcome.error}")
            batch = [p.to_dict() for p in outcome.result.predictions]
            if batch != [p.to_dict() for p in inline]:
                fail(f"{run} engine predict batch != inline predictions")
            if run == "warm" and not outcome.cached:
                fail("second predict batch was re-executed, not cached")
        by_config = {}
        for job, pred in zip(jobs, inline):
            cfg = dict(job.config_overrides)
            kind = cfg.pop("predictor_kind")
            by_config.setdefault(
                (job.technique, json.dumps(cfg, sort_keys=True)),
                {})[kind] = pred.ipc
        for (technique, _), ipcs in sorted(by_config.items()):
            if ipcs["perfect"] < ipcs["gshare"] - 1e-12:
                fail(f"metamorphic violation under {technique}: "
                     f"perfect {ipcs['perfect']:.4f} < "
                     f"gshare {ipcs['gshare']:.4f}")

    print(f"surrogate-smoke: OK — bound held, artifact digest "
          f"{model.digest()[:12]} stable across training order and "
          f"round-trip, predict batches cached")


if __name__ == "__main__":
    main()
